package conformance

import (
	"fmt"
	"reflect"

	"repro/internal/coherence"
	"repro/internal/simlocks"
)

// simMaxSteps bounds one sim-side program replay; a replay needs a few
// hundred operations, so hitting this means the sim lock livelocked.
const simMaxSteps = 1 << 21

// runSim drives a simulated lock through the same event script as
// runReal, one memory operation at a time via coherence.Stepper, and
// checks the admission order recorded by Ctx.Admit against the model.
//
// Each instance is one simulated CPU whose body acquires, bumps a
// guarded counter, parks on a per-instance release line (AwaitWrite —
// no coherence traffic while held), and releases when the driver Pokes
// the line. After every script event the driver steps all started
// threads round-robin to quiescence, so the machine state between
// events is deterministic and fully settled — the sim analog of
// runReal's probe-confirmed serialization.
//
// It returns the sim lock's detach count when the algorithm exposes
// one (sim Recipro), else -1.
func runSim(mk simlocks.Factory, p Program) (int, error) {
	sys := coherence.NewSystem(coherence.Config{CPUs: p.Instances})
	lock := mk()
	lock.Setup(sys, p.Instances)
	counter := sys.Alloc("conformance.counter")
	rel := make([]coherence.Addr, p.Instances)
	for i := range rel {
		rel[i] = sys.Alloc("conformance.rel")
	}

	bodies := make([]func(*coherence.Ctx), p.Instances)
	for i := range bodies {
		i := i
		bodies[i] = func(c *coherence.Ctx) {
			lock.Acquire(c, i)
			c.Admit()
			v := c.Load(counter)
			c.Store(counter, v+1)
			c.AwaitWrite(rel[i], func(v uint64) bool { return v != 0 })
			lock.Release(c, i)
		}
	}
	st := coherence.NewStepper(sys, simMaxSteps, bodies)

	started := make([]bool, p.Instances)
	quiesce := func() {
		for {
			progress := false
			for id := 0; id < p.Instances; id++ {
				if started[id] && st.Runnable(id) {
					st.Step(id)
					progress = true
				}
			}
			if !progress {
				return
			}
		}
	}

	admitted := 0
	for evIdx, ev := range p.Events {
		switch ev.Kind {
		case EvArrive:
			started[ev.Inst] = true
		case EvRelease:
			st.Poke(rel[ev.Inst], 1)
		}
		quiesce()
		adm := st.Admissions()
		want := admitted
		if ev.Admits >= 0 {
			want++
		}
		if len(adm) != want {
			return -1, fmt.Errorf("event %d (%v): %d admissions, want %d (order %v, expected %v)",
				evIdx, ev, len(adm), want, adm, p.Expected)
		}
		if ev.Admits >= 0 && adm[len(adm)-1] != ev.Admits {
			return -1, fmt.Errorf("event %d: sim admitted %d, model expects %d (order %v, expected %v)",
				evIdx, adm[len(adm)-1], ev.Admits, adm, p.Expected)
		}
		admitted = want
	}

	for id := 0; id < p.Instances; id++ {
		if !st.Finished(id) {
			return -1, fmt.Errorf("instance %d never finished", id)
		}
	}
	if got := sys.Peek(counter); got != uint64(p.Instances) {
		return -1, fmt.Errorf("guarded counter = %d, want %d (sim mutual exclusion violated)", got, p.Instances)
	}
	if err := sys.CheckInvariants(); err != nil {
		return -1, err
	}
	if got := st.Admissions(); !reflect.DeepEqual(got, p.Expected) {
		return -1, fmt.Errorf("sim admission order %v, model expects %v", got, p.Expected)
	}
	if d, ok := lock.(interface{ Detaches() uint64 }); ok {
		return int(d.Detaches()), nil
	}
	return -1, nil
}
