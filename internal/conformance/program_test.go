package conformance

import (
	"reflect"
	"testing"
)

// The segment model is the paper's Listing-1 discipline in miniature;
// pin it to a hand-traced schedule so generator bugs can't hide behind
// a model bug that drifts in the same direction.
//
// Trace: 0 arrives (admitted), 1 and 2 arrive and stack up. The first
// release finds the entry segment empty, detaches the stack — newest
// first — into [2 1] and admits 2. 3 arrives mid-segment. The next
// release admits 1 from the entry segment (3 keeps waiting: LIFO is
// per-segment, not global). The third release detaches again for 3.
func TestSegmentModelKnownSchedule(t *testing.T) {
	m := &segmentModel{hold: -1}
	steps := []struct {
		admit int
		do    func() int
	}{
		{0, func() int { return m.arrive(0) }},
		{-1, func() int { return m.arrive(1) }},
		{-1, func() int { return m.arrive(2) }},
		{2, func() int { return m.release() }},
		{-1, func() int { return m.arrive(3) }},
		{1, func() int { return m.release() }},
		{3, func() int { return m.release() }},
		{-1, func() int { return m.release() }},
	}
	for i, s := range steps {
		if got := s.do(); got != s.admit {
			t.Fatalf("step %d: admitted %d, want %d", i, got, s.admit)
		}
	}
	if m.detaches() != 2 {
		t.Fatalf("detaches = %d, want 2 (one per release-with-empty-entry)", m.detaches())
	}
	if m.holder() != -1 {
		t.Fatalf("holder = %d after final release, want -1", m.holder())
	}
}

func TestFIFOModelKnownSchedule(t *testing.T) {
	m := &fifoModel{hold: -1}
	if m.arrive(0) != 0 || m.arrive(1) != -1 || m.arrive(2) != -1 {
		t.Fatal("FIFO arrivals mis-admitted")
	}
	for i, want := range []int{1, 2, -1} {
		if got := m.release(); got != want {
			t.Fatalf("release %d admitted %d, want %d", i, got, want)
		}
	}
	if m.detaches() != 0 {
		t.Fatal("FIFO model reported detaches")
	}
}

// The generator must produce self-consistent programs for every seed:
// a valid admission permutation, balanced events, bypass within the
// discipline's bound, deterministic regeneration, and never two
// in-flight instances of one logical thread.
func TestProgramGeneratorInvariants(t *testing.T) {
	for _, kind := range []ModelKind{KindFIFO, KindSegment} {
		for seed := uint64(1); seed <= 200; seed++ {
			threads := 1 + int(seed%5)
			episodes := 1 + int(seed%3)
			p := NewProgram(seed, threads, episodes, kind)
			if err := p.Validate(); err != nil {
				t.Fatalf("kind %v seed %d: %v", kind, seed, err)
			}
			if p.Instances != threads*episodes {
				t.Fatalf("kind %v seed %d: %d instances, want %d", kind, seed, p.Instances, threads*episodes)
			}
			q := NewProgram(seed, threads, episodes, kind)
			if !reflect.DeepEqual(p, q) {
				t.Fatalf("kind %v seed %d: regeneration diverged", kind, seed)
			}
			inflight := make([]bool, threads)
			for _, ev := range p.Events {
				th := p.ThreadOf[ev.Inst]
				switch ev.Kind {
				case EvArrive:
					if inflight[th] {
						t.Fatalf("kind %v seed %d: thread %d has two instances in flight", kind, seed, th)
					}
					inflight[th] = true
				case EvRelease:
					inflight[th] = false
				}
			}
		}
	}
}

// FIFO programs must admit strictly in arrival order — the property the
// differential checker leans on for ticket and queue locks.
func TestFIFOProgramsAdmitInArrivalOrder(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		p := NewProgram(seed, 4, 2, KindFIFO)
		for i, inst := range p.Expected {
			if inst != i {
				t.Fatalf("seed %d: admission %d is instance %d; FIFO must admit in arrival order", seed, i, inst)
			}
		}
		if p.Detaches != 0 {
			t.Fatalf("seed %d: FIFO program recorded %d detaches", seed, p.Detaches)
		}
	}
}

// The paper's bypass bound of 2 for the Reciprocating discipline is
// tight: some generated schedule must actually witness bypass 2, or the
// metric (or the generator's contention bias) has gone soft.
func TestSegmentBypassBoundIsTight(t *testing.T) {
	witness := false
	for seed := uint64(1); seed <= 300; seed++ {
		p := NewProgram(seed, 4, 3, KindSegment)
		b := p.MaxBypass()
		if b > 2 {
			t.Fatalf("seed %d: bypass %d exceeds the paper's bound 2", seed, b)
		}
		if b == 2 {
			witness = true
		}
	}
	if !witness {
		t.Fatal("no schedule witnessed bypass 2 — the bound check is vacuous")
	}
}
