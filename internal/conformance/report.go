package conformance

import "repro/internal/registry"

// CheckResult is one check's outcome for one entry. Err is nil on
// pass, a skipError (see Skipped) when the check does not apply, and
// a real error on failure.
type CheckResult struct {
	Check string
	Err   error
}

// Report aggregates every conformance check for one entry.
type Report struct {
	Entry   registry.Entry
	Results []CheckResult
	// Diff is set when the entry has a sim twin and the differential
	// checker ran (successfully or not — its error is in Results).
	Diff *DiffResult
}

// Failed reports whether any check failed (skips are not failures).
func (r Report) Failed() bool {
	for _, c := range r.Results {
		if c.Err != nil && !Skipped(c.Err) {
			return true
		}
	}
	return false
}

// CheckNames lists the suite's checks in Run's emission order.
// Front-ends derive their table headers from this, so a check added to
// Run cannot silently drift out of the rendered columns (pinned by
// TestRunMatchesCheckNames).
func CheckNames() []string {
	return []string{
		"mutex", "trylock", "bounded", "abandon", "unlock",
		"read-sharing", "shard-mutex", "shard-iter",
		"cluster-fence", "lease-reacquire", "differential",
	}
}

// Run executes the full suite — mutual exclusion, TryLock soundness,
// bounded contract, abandonment safety, unlock discipline, read-path
// sharing for entries claiming the read capabilities, the
// sharded-store and cluster-simulation compositions, lease
// re-acquisition, and (for twin-declaring entries) the differential
// checker — against one entry.
func Run(e registry.Entry, o Options) Report {
	o = o.withDefaults()
	r := Report{Entry: e}
	add := func(name string, err error) {
		r.Results = append(r.Results, CheckResult{Check: name, Err: err})
	}
	add("mutex", CheckMutualExclusion(e, o))
	add("trylock", CheckTryLock(e, o))
	add("bounded", CheckBounded(e, o))
	add("abandon", CheckAbandonment(e, o))
	add("unlock", CheckUnlockDiscipline(e))
	add("read-sharing", CheckReadSharing(e, o))
	add("shard-mutex", CheckShardedMutualExclusion(e, o))
	add("shard-iter", CheckShardedIterator(e, o))
	add("cluster-fence", CheckClusterFencing(e, o))
	add("lease-reacquire", CheckLeaseReacquire(e, o))
	if e.SimTwin == "" {
		add("differential", skipError("no sim twin"))
	} else {
		diff, err := RunDifferential(e, o.Seed, o.Schedules)
		r.Diff = &diff
		add("differential", err)
	}
	return r
}
