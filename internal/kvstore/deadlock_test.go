package kvstore

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

// recordingLocker appends its shard index to a shared sequence on
// every acquisition. With a single goroutine driving the store the
// sequence is deterministic, so tests can assert the exact
// acquisition order the stripe table produced.
type recordingLocker struct {
	mu    sync.Mutex
	shard int
	seq   *[]int
	seqMu *sync.Mutex
}

func (r *recordingLocker) Lock() {
	r.mu.Lock()
	r.seqMu.Lock()
	*r.seq = append(*r.seq, r.shard)
	r.seqMu.Unlock()
}

func (r *recordingLocker) Unlock() { r.mu.Unlock() }

// newRecordingDB builds a sharded store whose acquisitions are
// recorded, exploiting the documented NewLock call order (shard 0
// first) to label each lock with its shard index.
func newRecordingDB(shards int) (*ShardedDB, *[]int, *sync.Mutex) {
	seq := &[]int{}
	seqMu := &sync.Mutex{}
	next := 0
	db := OpenSharded(ShardedOptions{
		Shards:        shards,
		MemTableBytes: 64 << 10,
		NewLock: func() sync.Locker {
			l := &recordingLocker{shard: next, seq: seq, seqMu: seqMu}
			next++
			return l
		},
	})
	return db, seq, seqMu
}

// TestStripeCanonicalOrder pins the deadlock-freedom discipline
// directly: however a batch's keys are ordered, the stripe table
// acquires the involved shard locks in ascending shard order, and a
// non-ascending set panics rather than risking an inversion.
func TestStripeCanonicalOrder(t *testing.T) {
	const shards = 8
	db, seq, seqMu := newRecordingDB(shards)

	// Craft a batch whose insertion order visits shards descending —
	// the worst case for a naive in-order acquirer.
	keys := make([][]byte, shards)
	next := uint64(0)
	for s := 0; s < shards; s++ {
		keys[s], next = keyForShard(db, s, next)
	}
	var b Batch
	for s := shards - 1; s >= 0; s-- {
		b.Put(keys[s], []byte("v"))
	}
	*seq = (*seq)[:0]
	db.Write(&b)

	seqMu.Lock()
	got := append([]int(nil), *seq...)
	seqMu.Unlock()
	if len(got) != shards {
		t.Fatalf("batch acquired %d locks, want %d: %v", len(got), shards, got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("acquisition order not canonical ascending: %v", got)
		}
	}

	// Iterator snapshots obey the same discipline.
	*seq = (*seq)[:0]
	db.NewIterator()
	seqMu.Lock()
	got = append([]int(nil), *seq...)
	seqMu.Unlock()
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("iterator acquisition order not canonical ascending: %v", got)
		}
	}

	// The enforcement itself: an out-of-order set must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("lockSet accepted a non-ascending stripe set")
			}
		}()
		db.table.lockSet([]int{2, 1})
	}()
}

// TestShardedBatchNoDeadlock is the ordering regression stress:
// goroutines fire multi-key batches over overlapping, randomly
// ordered shard subsets — plus iterator snapshots, which take every
// stripe — under a stall watchdog. Any ordering bug deadlocks a pair
// of batches; the watchdog then dumps all stacks and fails instead of
// hanging the suite. Run it under -race via `make race`.
func TestShardedBatchNoDeadlock(t *testing.T) {
	const (
		shards     = 8
		workers    = 8
		iters      = 400
		watchdogue = 60 * time.Second
	)
	db := OpenSharded(ShardedOptions{Shards: shards, MemTableBytes: 4 << 10, MaxRuns: 2})

	// One key per shard so a batch's shard subset is chosen exactly.
	keys := make([][]byte, shards)
	next := uint64(0)
	for s := 0; s < shards; s++ {
		keys[s], next = keyForShard(db, s, next)
	}

	var ops atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.NewXorShift64(0xdead10c + uint64(g)*0x9e3779b97f4a7c15)
			for i := 0; i < iters; i++ {
				switch rng.Intn(8) {
				case 0:
					// Full-snapshot iterator competes for every stripe.
					it := db.NewIterator()
					it.Next()
				default:
					// 2–5 distinct shards in random insertion order
					// (Fisher–Yates; xrand has no Perm).
					n := 2 + rng.Intn(4)
					perm := make([]int, shards)
					for p := range perm {
						perm[p] = p
					}
					for p := shards - 1; p > 0; p-- {
						q := rng.Intn(p + 1)
						perm[p], perm[q] = perm[q], perm[p]
					}
					var b Batch
					for _, s := range perm[:n] {
						b.Put(keys[s], []byte(fmt.Sprintf("g%d.%d", g, i)))
					}
					db.Write(&b)
				}
				ops.Add(1)
			}
		}(g)
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	select {
	case <-done:
	case <-time.After(watchdogue):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "=== sharded batch stall: %d/%d ops completed ===\n%s\n",
			ops.Load(), workers*iters, buf[:n])
		t.Fatal("sharded multi-key batches stalled (possible lock-order deadlock); stacks dumped above")
	}
}
