package kvstore

import (
	"fmt"
	"sync"
	"testing"
)

func TestBatchBasics(t *testing.T) {
	db := Open(Options{})
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	db.Write(&b)
	if _, ok := db.Get([]byte("a")); ok {
		t.Fatal("in-batch delete did not shadow earlier put")
	}
	if v, ok := db.Get([]byte("b")); !ok || string(v) != "2" {
		t.Fatalf("b = %q,%v", v, ok)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	db.Write(&b) // empty write is a no-op
	s := db.Stats()
	if s.Puts != 2 || s.Deletes != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBatchIsReusableAndIsolated(t *testing.T) {
	db := Open(Options{})
	var b Batch
	key := []byte("k")
	val := []byte("v1")
	b.Put(key, val)
	// Mutating the caller's slices after queueing must not corrupt
	// the batch (defensive copies).
	val[1] = 'X'
	key[0] = 'z'
	db.Write(&b)
	if v, ok := db.Get([]byte("k")); !ok || string(v) != "v1" {
		t.Fatalf("k = %q,%v (batch aliased caller memory)", v, ok)
	}
}

func TestBatchCrossesFreezeBoundary(t *testing.T) {
	db := Open(Options{MemTableBytes: 2 << 10, MaxRuns: 2})
	for round := 0; round < 20; round++ {
		var b Batch
		for i := 0; i < 50; i++ {
			b.Put(Key(uint64(round*50+i)), []byte(fmt.Sprintf("v%d", round*50+i)))
		}
		db.Write(&b)
	}
	if db.Stats().Freezes == 0 {
		t.Fatal("expected freezes with tiny memtable")
	}
	for i := 0; i < 1000; i++ {
		v, ok := db.Get(Key(uint64(i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d = %q,%v", i, v, ok)
		}
	}
}

func TestConcurrentBatchWriters(t *testing.T) {
	db := Open(Options{MemTableBytes: 8 << 10})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				var b Batch
				for i := 0; i < 20; i++ {
					b.Put(Key(uint64(w*10000+round*20+i)), []byte("x"))
				}
				db.Write(&b)
			}
		}()
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		for i := 0; i < 1000; i++ {
			if _, ok := db.Get(Key(uint64(w*10000 + i))); !ok {
				t.Fatalf("writer %d key %d lost", w, i)
			}
		}
	}
}

func BenchmarkDBPutSingle(b *testing.B) {
	db := Open(Options{})
	val := make([]byte, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Put(Key(uint64(i%10000)), val)
	}
}

func BenchmarkDBWriteBatch100(b *testing.B) {
	db := Open(Options{})
	val := make([]byte, 100)
	b.ReportAllocs()
	var batch Batch
	for i := 0; i < b.N; i++ {
		if batch.Len() < 100 {
			batch.Put(Key(uint64(i%10000)), val)
			continue
		}
		db.Write(&batch)
		batch.Reset()
	}
	db.Write(&batch)
}

func BenchmarkDBGet(b *testing.B) {
	db := Open(Options{})
	FillSeq(db, 10000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get(Key(uint64(i % 10000)))
	}
}

func BenchmarkSkipListGet(b *testing.B) {
	sl := NewSkipList()
	for i := 0; i < 10000; i++ {
		sl.Put(Key(uint64(i)), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl.Get(Key(uint64(i % 10000)))
	}
}

func BenchmarkIteratorFullScan(b *testing.B) {
	db := Open(Options{MemTableBytes: 64 << 10})
	FillSeq(db, 5000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := db.NewIterator()
		n := 0
		for it.Next() {
			n++
		}
		if n != 5000 {
			b.Fatalf("scan saw %d", n)
		}
	}
}
