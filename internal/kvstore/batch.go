package kvstore

// Batch accumulates writes for application under a single acquisition
// of the central mutex, mirroring LevelDB's WriteBatch — the unit its
// write path actually moves through DBImpl::Write. Batching amortizes
// lock traffic (one acquire/release per batch instead of per
// operation), which under a contended coarse mutex is itself a
// lock-workload shape worth benchmarking.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	key, value []byte
	delete     bool
}

// Put queues an insert/overwrite.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
}

// Delete queues a tombstone.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{
		key:    append([]byte(nil), key...),
		delete: true,
	})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse.
func (b *Batch) Reset() { b.ops = b.ops[:0] }

// Write applies the batch under one acquisition of the store's mutex.
// Operations apply in order; a freeze is considered at most once, at
// the end, so a batch lands in a single memtable generation whenever
// it fits.
func (db *DB) Write(b *Batch) {
	if b.Len() == 0 {
		return
	}
	db.mu.Lock()
	db.applyLocked(b.ops)
	db.mu.Unlock()
}

// applyLocked applies ops in order and considers one freeze at the
// end. The caller holds db's lock — directly (DB.Write) or through
// the sharded store's stripe table, which holds every involved shard
// lock while a cross-shard batch applies.
func (db *DB) applyLocked(ops []batchOp) {
	for _, op := range ops {
		if op.delete {
			db.mem.Delete(op.key)
			db.stats.Deletes++
		} else {
			db.mem.Put(op.key, op.value)
			db.stats.Puts++
		}
	}
	db.maybeFreezeLocked()
}
