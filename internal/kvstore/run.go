package kvstore

import (
	"bytes"
	"sort"
)

// Run is an immutable sorted run — the in-memory stand-in for an
// SSTable: a frozen memtable or the product of merging older runs.
// Immutability makes concurrent reads trivially safe.
type Run struct {
	keys  [][]byte
	vals  [][]byte
	tombs []bool
}

// buildRun freezes a memtable into a sorted run.
func buildRun(sl *SkipList) *Run {
	r := &Run{
		keys:  make([][]byte, 0, sl.Len()),
		vals:  make([][]byte, 0, sl.Len()),
		tombs: make([]bool, 0, sl.Len()),
	}
	sl.Ascend(func(k, v []byte, tomb bool) bool {
		r.keys = append(r.keys, k)
		r.vals = append(r.vals, v)
		r.tombs = append(r.tombs, tomb)
		return true
	})
	return r
}

// Get binary-searches the run.
func (r *Run) Get(key []byte) (val []byte, tombstone, found bool) {
	i := sort.Search(len(r.keys), func(i int) bool {
		return bytes.Compare(r.keys[i], key) >= 0
	})
	if i < len(r.keys) && bytes.Equal(r.keys[i], key) {
		return r.vals[i], r.tombs[i], true
	}
	return nil, false, false
}

// Len reports the number of entries (including tombstones).
func (r *Run) Len() int { return len(r.keys) }

// mergeRuns merges runs (ordered newest first) into one, applying
// newest-wins semantics and dropping tombstones (a full merge is the
// bottom level, so tombstones have nothing left to shadow).
func mergeRuns(runs []*Run) *Run {
	idx := make([]int, len(runs))
	out := &Run{}
	for {
		// Find the smallest current key across runs; ties resolve to
		// the newest run (lowest index).
		best := -1
		for ri := range runs {
			if idx[ri] >= runs[ri].Len() {
				continue
			}
			if best == -1 || bytes.Compare(runs[ri].keys[idx[ri]], runs[best].keys[idx[best]]) < 0 {
				best = ri
			}
		}
		if best == -1 {
			return out
		}
		key := runs[best].keys[idx[best]]
		if !runs[best].tombs[idx[best]] {
			out.keys = append(out.keys, key)
			out.vals = append(out.vals, runs[best].vals[idx[best]])
			out.tombs = append(out.tombs, false)
		}
		// Skip this key in every run.
		for ri := range runs {
			for idx[ri] < runs[ri].Len() && bytes.Equal(runs[ri].keys[idx[ri]], key) {
				idx[ri]++
			}
		}
	}
}
