package kvstore

import (
	"bytes"
	"sync/atomic"

	"repro/internal/xrand"
)

// maxHeight bounds skiplist towers (LevelDB uses 12).
const maxHeight = 12

// valueBox carries a value or a deletion tombstone; boxes are
// immutable once published, so readers can load them without locks.
type valueBox struct {
	data      []byte
	tombstone bool
}

type slNode struct {
	key    []byte
	val    atomic.Pointer[valueBox]
	height int
	next   [maxHeight]atomic.Pointer[slNode]
}

// SkipList is an insert-only ordered map modeled on LevelDB's
// memtable skiplist: exactly one writer at a time (the DB's central
// mutex serializes writers) while readers traverse concurrently with
// no locking at all — links are published bottom-up through atomic
// pointers, so a reader always sees a consistent, complete prefix of
// the structure.
type SkipList struct {
	head   *slNode
	height atomic.Int32
	nodes  atomic.Int64
	bytes  atomic.Int64
	rng    *xrand.XorShift64
}

// NewSkipList creates an empty list.
func NewSkipList() *SkipList {
	return &SkipList{
		head: &slNode{height: maxHeight},
		rng:  xrand.NewXorShift64(0x5ca1ab1e),
	}
}

func (s *SkipList) randomHeight() int {
	h := 1
	// P = 1/4 branching, as in LevelDB.
	for h < maxHeight && s.rng.Uint64()&3 == 0 {
		h++
	}
	return h
}

// findPredecessors fills preds with the rightmost node before key at
// every level and returns the candidate node (which may equal key).
func (s *SkipList) findPredecessors(key []byte, preds *[maxHeight]*slNode) *slNode {
	x := s.head
	for lvl := int(s.height.Load()); lvl >= 0; lvl-- {
		if lvl >= maxHeight {
			continue
		}
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || bytes.Compare(nxt.key, key) >= 0 {
				break
			}
			x = nxt
		}
		preds[lvl] = x
	}
	return x.next[0].Load()
}

// Put inserts or updates key. Single writer only (callers hold the
// DB mutex); readers may run concurrently.
func (s *SkipList) Put(key, value []byte) {
	s.put(key, &valueBox{data: append([]byte(nil), value...)})
}

// Delete records a tombstone for key.
func (s *SkipList) Delete(key []byte) {
	s.put(key, &valueBox{tombstone: true})
}

func (s *SkipList) put(key []byte, box *valueBox) {
	var preds [maxHeight]*slNode
	cand := s.findPredecessors(key, &preds)
	if cand != nil && bytes.Equal(cand.key, key) {
		old := cand.val.Load()
		cand.val.Store(box)
		s.bytes.Add(int64(len(box.data)) - int64(len(old.data)))
		return
	}
	h := s.randomHeight()
	n := &slNode{key: append([]byte(nil), key...), height: h}
	n.val.Store(box)
	if int32(h-1) > s.height.Load() {
		s.height.Store(int32(h - 1))
	}
	for lvl := 0; lvl < h; lvl++ {
		pred := preds[lvl]
		if pred == nil {
			pred = s.head
		}
		n.next[lvl].Store(pred.next[lvl].Load())
	}
	// Publish bottom-up so concurrent readers never see a node at a
	// high level that is missing below.
	for lvl := 0; lvl < h; lvl++ {
		pred := preds[lvl]
		if pred == nil {
			pred = s.head
		}
		pred.next[lvl].Store(n)
	}
	s.nodes.Add(1)
	s.bytes.Add(int64(len(key) + len(box.data) + 32))
}

// Get returns the value for key; the second result distinguishes
// "present" from "absent", and the third reports a tombstone.
// Lock-free: safe concurrently with one writer.
func (s *SkipList) Get(key []byte) ([]byte, bool, bool) {
	x := s.head
	for lvl := int(s.height.Load()); lvl >= 0; lvl-- {
		if lvl >= maxHeight {
			continue
		}
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || bytes.Compare(nxt.key, key) > 0 {
				break
			}
			if bytes.Equal(nxt.key, key) {
				box := nxt.val.Load()
				return box.data, true, box.tombstone
			}
			x = nxt
		}
	}
	return nil, false, false
}

// Len reports the number of distinct keys.
func (s *SkipList) Len() int { return int(s.nodes.Load()) }

// Bytes reports the approximate memory footprint, the freeze trigger.
func (s *SkipList) Bytes() int { return int(s.bytes.Load()) }

// Ascend visits all entries in key order (including tombstones).
// Requires quiescence or an immutable (frozen) list.
func (s *SkipList) Ascend(fn func(key, value []byte, tombstone bool) bool) {
	for n := s.head.next[0].Load(); n != nil; n = n.next[0].Load() {
		box := n.val.Load()
		if !fn(n.key, box.data, box.tombstone) {
			return
		}
	}
}
