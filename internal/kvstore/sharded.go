package kvstore

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/registry"
)

// ShardedOptions configures a ShardedDB.
type ShardedOptions struct {
	// Shards is the partition count (default 16). Every key lives in
	// exactly one shard, selected by hashing the key.
	Shards int
	// NewLock constructs one guarding lock per shard; it is called
	// exactly Shards times, in shard order (shard 0 first), so callers
	// can associate instrumentation with shard indices. Nil selects
	// LockName.
	NewLock func() sync.Locker
	// LockName selects the per-shard lock from the repository catalog
	// when NewLock is nil; the lock is built through registry.Build
	// with BuildOpts, so the whole decorator pipeline (chaos veto,
	// bounded guarantee, lockstat telemetry) is available per shard.
	// Unknown names panic in OpenSharded. Empty means the catalog
	// default (the Reciprocating Lock).
	LockName string
	// BuildOpts are the registry decorator options applied when
	// LockName (or the default) selects the per-shard lock.
	BuildOpts []registry.Option
	// MemTableBytes is the per-shard freeze threshold (default 1 MiB,
	// like the coarse store; callers comparing against a coarse DB of
	// budget B typically pass B/Shards).
	MemTableBytes int
	// MaxRuns is the per-shard compaction trigger (default 4).
	MaxRuns int
}

// ShardedDB is the hash-partitioned successor of the coarse DB: the
// keyspace is split across Shards independent memtable+run stacks,
// each guarded by its own pluggable lock, so single-key operations on
// different shards never contend. Cross-shard operations (multi-key
// Write batches and iterator snapshots) go through a striped lock
// table that acquires every involved shard lock in canonical
// ascending shard order — two-phase locking with a total order, which
// makes them deadlock-free and atomic with respect to each other: an
// iterator snapshot can never observe a torn multi-key batch.
//
// This is the coarse-vs-fine trade-off studied in the coarse-grained
// locking literature (see PAPERS.md): with one shard the ShardedDB
// degenerates to the paper's Figure 3 shape, and the shard count is a
// first-class experiment dimension next to the lock algorithm.
type ShardedDB struct {
	shards []*DB
	table  stripeTable
}

// OpenSharded creates an empty sharded database.
func OpenSharded(opts ShardedOptions) *ShardedDB {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	mk := opts.NewLock
	if mk == nil {
		name := opts.LockName
		if name == "" {
			name = "Recipro"
		}
		if _, err := registry.Build(name, opts.BuildOpts...); err != nil {
			panic(fmt.Sprintf("kvstore: ShardedOptions.LockName: %v", err))
		}
		mk = func() sync.Locker {
			l, _ := registry.Build(name, opts.BuildOpts...)
			return l
		}
	}
	s := &ShardedDB{shards: make([]*DB, n)}
	locks := make([]sync.Locker, n)
	for i := range s.shards {
		l := mk()
		s.shards[i] = Open(Options{
			Lock:          l,
			MemTableBytes: opts.MemTableBytes,
			MaxRuns:       opts.MaxRuns,
		})
		locks[i] = l
	}
	s.table = newStripeTable(locks)
	return s
}

// shardIndex hashes key (FNV-1a) onto one of n shards without
// allocating — the sharded Get hot path must add zero allocations
// over the coarse path (asserted by TestShardedGetAddsNoAllocs).
func shardIndex(key []byte, n int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}

// NumShards reports the partition count.
func (s *ShardedDB) NumShards() int { return len(s.shards) }

// ShardIndex reports which shard owns key (diagnostics and tests).
func (s *ShardedDB) ShardIndex(key []byte) int {
	return shardIndex(key, len(s.shards))
}

// shard returns the DB owning key.
func (s *ShardedDB) shard(key []byte) *DB {
	return s.shards[shardIndex(key, len(s.shards))]
}

// Get looks up a key in its shard: hash → shard → lock → lookup.
func (s *ShardedDB) Get(key []byte) ([]byte, bool) {
	return s.shard(key).Get(key)
}

// Put inserts or updates a key in its shard.
func (s *ShardedDB) Put(key, value []byte) {
	s.shard(key).Put(key, value)
}

// Delete removes a key (tombstone) from its shard.
func (s *ShardedDB) Delete(key []byte) {
	s.shard(key).Delete(key)
}

// Write applies the batch atomically: the ops are grouped by shard and
// every involved shard lock is held simultaneously (acquired in
// canonical ascending order through the stripe table) while the groups
// are applied, so concurrent iterators and overlapping batches
// serialize cleanly instead of deadlocking or observing torn writes.
// Within each shard the batch's operation order is preserved.
func (s *ShardedDB) Write(b *Batch) {
	if b.Len() == 0 {
		return
	}
	if len(s.shards) == 1 {
		s.shards[0].Write(b)
		return
	}
	groups := make([][]batchOp, len(s.shards))
	touched := make([]int, 0, len(s.shards))
	for _, op := range b.ops {
		si := shardIndex(op.key, len(s.shards))
		if groups[si] == nil {
			touched = append(touched, si)
		}
		groups[si] = append(groups[si], op)
	}
	sort.Ints(touched)
	s.table.lockSet(touched)
	for _, si := range touched {
		s.shards[si].applyLocked(groups[si])
	}
	s.table.unlockSet(touched)
}

// NewIterator captures a consistent snapshot of every shard — all
// shard locks are held simultaneously while the memtable and run
// references are collected, so the snapshot sits at a single point in
// the total order of cross-shard batches — and returns a merging
// iterator over it. When the shard locks admit shared readers the
// snapshot holds them all in read mode: batch writers (exclusive) are
// still fully excluded, but concurrent snapshots no longer serialize
// against each other. Hash partitioning guarantees a key appears in at
// most one shard, so cross-shard merging never has to resolve
// duplicate keys.
func (s *ShardedDB) NewIterator() *Iterator {
	if len(s.shards) == 1 {
		return s.shards[0].NewIterator()
	}
	all := make([]int, len(s.shards))
	for i := range all {
		all[i] = i
	}
	mems := make([]*SkipList, len(s.shards))
	runs := make([][]*Run, len(s.shards))
	s.table.rlockSet(all)
	for i, sh := range s.shards {
		mems[i] = sh.mem
		runs[i] = sh.runs
	}
	s.table.runlockSet(all)

	it := &Iterator{}
	for i := range s.shards {
		m := &slIter{sl: mems[i]}
		m.n = mems[i].head.next[0].Load()
		it.sources = append(it.sources, m)
		for _, r := range runs[i] {
			it.sources = append(it.sources, &runIter{r: r})
		}
	}
	return it
}

// Stats sums the per-shard counters.
func (s *ShardedDB) Stats() Stats {
	var total Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		total.Gets += st.Gets
		total.Puts += st.Puts
		total.Deletes += st.Deletes
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Freezes += st.Freezes
		total.Compactions += st.Compactions
	}
	return total
}

// ShardStats returns one shard's counters (diagnostics and tests).
func (s *ShardedDB) ShardStats(i int) Stats { return s.shards[i].Stats() }

// Runs sums the frozen-run counts across shards (diagnostics).
func (s *ShardedDB) Runs() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Runs()
	}
	return n
}
