package kvstore

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// Key renders i as a fixed-width big-endian key, matching db_bench's
// dense sequential keyspace.
func Key(i uint64) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[8:], i)
	return b[:]
}

// FillSeq populates db with n sequential keys carrying valueSize-byte
// values — the paper's population step
// (db_bench --benchmarks=fillseq).
func FillSeq(db *DB, n int, valueSize int) {
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < n; i++ {
		db.Put(Key(uint64(i)), val)
	}
}

// ReadRandomConfig shapes the §7.3 readrandom benchmark.
type ReadRandomConfig struct {
	Threads  int
	Keyspace int
	// Duration bounds the run; if zero, OpsPerThread bounds it
	// deterministically.
	Duration     time.Duration
	OpsPerThread int
	Seed         uint64
}

// ReadRandomResult reports aggregate throughput.
type ReadRandomResult struct {
	Ops       uint64
	Mops      float64
	Hits      uint64
	PerThread []uint64
	Jain      float64
	Elapsed   time.Duration
}

// ReadWhileWriting mirrors db_bench's readwhilewriting workload: the
// configured reader threads run the readrandom loop while one
// dedicated writer continuously overwrites random keys. The writer
// rate is reported alongside; this leans on the central mutex from
// both sides, including the freeze/compaction paths.
func ReadWhileWriting(db *DB, cfg ReadRandomConfig, valueSize int) (ReadRandomResult, uint64) {
	var writerOps uint64
	stopW := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := xrand.NewXorShift64(cfg.Seed | 1)
		val := make([]byte, valueSize)
		for {
			select {
			case <-stopW:
				return
			default:
			}
			db.Put(Key(uint64(rng.Intn(cfg.Keyspace))), val)
			writerOps++
		}
	}()
	res := ReadRandom(db, cfg)
	close(stopW)
	wg.Wait()
	return res, writerOps
}

// ReadRandom runs T reader threads, each looping: generate a random
// key, read it from the database (db_bench --benchmarks=readrandom
// with a fixed duration, as modified in §7.3).
func ReadRandom(db *DB, cfg ReadRandomConfig) ReadRandomResult {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Keyspace <= 0 {
		cfg.Keyspace = 1
	}
	perThread := make([]uint64, cfg.Threads)
	var hits atomic.Uint64
	var stop atomic.Bool

	var begin, done sync.WaitGroup
	begin.Add(1)
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		t := t
		done.Add(1)
		go func() {
			defer done.Done()
			rng := xrand.NewXorShift64(uint64(t)*0x9e3779b97f4a7c15 + cfg.Seed + 1)
			var ops, myHits uint64
			begin.Wait()
			for {
				if cfg.OpsPerThread > 0 && ops >= uint64(cfg.OpsPerThread) {
					break
				}
				if cfg.OpsPerThread == 0 && stop.Load() {
					break
				}
				k := Key(uint64(rng.Intn(cfg.Keyspace)))
				if _, ok := db.Get(k); ok {
					myHits++
				}
				ops++
			}
			perThread[t] = ops
			hits.Add(myHits)
		}()
	}
	begin.Done()
	if cfg.OpsPerThread == 0 {
		d := cfg.Duration
		if d <= 0 {
			d = time.Second
		}
		time.Sleep(d)
		stop.Store(true)
	}
	done.Wait()
	el := time.Since(start)

	var total uint64
	perF := make([]float64, cfg.Threads)
	for i, v := range perThread {
		total += v
		perF[i] = float64(v)
	}
	return ReadRandomResult{
		Ops:       total,
		Mops:      float64(total) / el.Seconds() / 1e6,
		Hits:      hits.Load(),
		PerThread: perThread,
		Jain:      stats.JainIndex(perF),
		Elapsed:   el,
	}
}
