package kvstore

import (
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/pad"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Key renders i as a fixed-width big-endian key, matching db_bench's
// dense sequential keyspace.
func Key(i uint64) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[8:], i)
	return b[:]
}

// FillSeq populates db (coarse or sharded) with n sequential keys
// carrying valueSize-byte values — the paper's population step
// (db_bench --benchmarks=fillseq).
func FillSeq(db Store, n int, valueSize int) {
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < n; i++ {
		db.Put(Key(uint64(i)), val)
	}
}

// ReadRandomConfig shapes the §7.3 readrandom benchmark.
type ReadRandomConfig struct {
	Threads  int
	Keyspace int
	// Duration bounds the run; if zero, OpsPerThread bounds it
	// deterministically.
	Duration     time.Duration
	OpsPerThread int
	// ReadFrac, when in (0,1), turns the pure readrandom loop into a
	// read-mostly mix: each operation is a Get with this probability
	// and a Put of a fresh 100-byte value otherwise. Zero keeps the
	// classic 100%-read loop (readrandom's original shape).
	ReadFrac float64
	Seed     uint64
}

// ReadRandomResult reports aggregate throughput.
type ReadRandomResult struct {
	Ops       uint64
	Mops      float64
	Hits      uint64
	PerThread []uint64
	Jain      float64
	Elapsed   time.Duration
}

// ReadWhileWritingWorkload mirrors db_bench's readwhilewriting
// workload on the shared engine: the engine's workers run the
// readrandom loop while one dedicated writer goroutine (started in
// Setup, joined in Teardown) continuously overwrites random keys.
// The writer tally is exported as the "writer_ops" extra; this leans
// on the store's lock(s) from both sides — the single coarse mutex,
// or each key's shard lock — including the freeze/compaction paths.
func ReadWhileWritingWorkload(openDB func(run harness.RunInfo) Store, cfg ReadRandomConfig, valueSize int) harness.Workload {
	var (
		db        Store
		writerOps uint64
		stopW     chan struct{}
		wg        sync.WaitGroup
	)
	keyspace := cfg.Keyspace
	if keyspace <= 0 {
		keyspace = 1
	}
	var reads harness.Workload
	return &harness.WorkloadFunc{
		SetupFn: func(run harness.RunInfo) {
			reads = ReadRandomWorkload(func(harness.RunInfo) Store { return db }, cfg)
			db = openDB(run)
			reads.Setup(run)
			writerOps = 0
			stopW = make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := xrand.NewXorShift64(run.Seed | 1)
				val := make([]byte, valueSize)
				for {
					select {
					case <-stopW:
						return
					default:
					}
					db.Put(Key(uint64(rng.Intn(keyspace))), val)
					writerOps++
				}
			}()
		},
		WorkerFn: func(id int) func() { return reads.Worker(id) },
		TeardownFn: func() {
			close(stopW)
			wg.Wait()
			reads.Teardown()
		},
		ExtrasFn: func() map[string]float64 {
			extras := reads.(harness.ExtraMetrics).Extras()
			extras["writer_ops"] = float64(writerOps)
			return extras
		},
	}
}

// ReadWhileWriting runs one readwhilewriting pass over db, returning
// the reader result and the writer's operation tally.
func ReadWhileWriting(db Store, cfg ReadRandomConfig, valueSize int) (ReadRandomResult, uint64) {
	w := ReadWhileWritingWorkload(func(harness.RunInfo) Store { return db }, cfg, valueSize)
	m := harness.Measure(w, engineConfig(cfg))
	res := resultFromMeasurement(m)
	return res, uint64(m.MedianOutcome().Extras["writer_ops"])
}

// hitCounter is a sector-padded per-worker hit tally (the harness
// engine owns the op counters; hits are workload-specific).
type hitCounter struct {
	n uint64
	_ [pad.SectorSize - 8]byte
}

// ReadRandomWorkload adapts the §7.3 readrandom loop to the shared
// benchmark engine. openDB is called once per run and must return a
// freshly populated store (coarse or sharded); pass a closure
// returning the same Store to reuse one store across runs (the
// single-run ReadRandom entry point does exactly that).
func ReadRandomWorkload(openDB func(run harness.RunInfo) Store, cfg ReadRandomConfig) harness.Workload {
	var (
		db   Store
		seed uint64
		hits []hitCounter
	)
	keyspace := cfg.Keyspace
	if keyspace <= 0 {
		keyspace = 1
	}
	return &harness.WorkloadFunc{
		SetupFn: func(run harness.RunInfo) {
			db = openDB(run)
			seed = run.Seed
			hits = make([]hitCounter, run.Threads)
		},
		WorkerFn: func(id int) func() {
			rng := xrand.NewXorShift64(uint64(id)*0x9e3779b97f4a7c15 + seed + 1)
			d, h := db, &hits[id]
			if cfg.ReadFrac > 0 && cfg.ReadFrac < 1 {
				// Read-mostly mix: Get with probability ReadFrac, Put
				// otherwise. Same devirtualization split as below.
				readPct := int(cfg.ReadFrac*100 + 0.5)
				val := make([]byte, 100)
				if cd, ok := db.(*DB); ok {
					return func() {
						k := Key(uint64(rng.Intn(keyspace)))
						if rng.Intn(100) < readPct {
							if _, ok := cd.Get(k); ok {
								h.n++
							}
						} else {
							cd.Put(k, val)
						}
					}
				}
				return func() {
					k := Key(uint64(rng.Intn(keyspace)))
					if rng.Intn(100) < readPct {
						if _, ok := d.Get(k); ok {
							h.n++
						}
					} else {
						d.Put(k, val)
					}
				}
			}
			if cd, ok := db.(*DB); ok {
				// Devirtualized coarse fast path: identical codegen to
				// the pre-Store loop, so coarse-vs-sharded comparisons
				// measure locking granularity, not interface dispatch.
				return func() {
					k := Key(uint64(rng.Intn(keyspace)))
					if _, ok := cd.Get(k); ok {
						h.n++
					}
				}
			}
			return func() {
				k := Key(uint64(rng.Intn(keyspace)))
				if _, ok := d.Get(k); ok {
					h.n++
				}
			}
		},
		ExtrasFn: func() map[string]float64 {
			var total uint64
			for i := range hits {
				total += hits[i].n
			}
			return map[string]float64{"hits": float64(total)}
		},
	}
}

// engineConfig maps the readrandom config onto the shared engine. The
// legacy 1s default duration is preserved.
func engineConfig(cfg ReadRandomConfig) harness.Config {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 1
	}
	d := cfg.Duration
	if cfg.OpsPerThread == 0 && d <= 0 {
		d = time.Second
	}
	if cfg.OpsPerThread > 0 {
		d = 0
	}
	return harness.Config{
		Threads:    threads,
		Duration:   d,
		Iterations: cfg.OpsPerThread,
		Runs:       1,
		Seed:       cfg.Seed,
	}
}

// resultFromMeasurement converts the median-defining run of m into the
// package's result type.
func resultFromMeasurement(m harness.Measurement) ReadRandomResult {
	sel := m.MedianOutcome()
	var total uint64
	perF := make([]float64, len(sel.PerWorker))
	for i, v := range sel.PerWorker {
		total += v
		perF[i] = float64(v)
	}
	return ReadRandomResult{
		Ops:       total,
		Mops:      m.Median,
		Hits:      uint64(sel.Extras["hits"]),
		PerThread: sel.PerWorker,
		Jain:      stats.JainIndex(perF),
		Elapsed:   sel.Elapsed,
	}
}

// ReadRandom runs T reader threads over db, each looping: generate a
// random key, read it from the database
// (db_bench --benchmarks=readrandom with a fixed duration, as
// modified in §7.3). One run on the shared engine; multi-run median
// selection belongs to callers driving Measure directly.
func ReadRandom(db Store, cfg ReadRandomConfig) ReadRandomResult {
	w := ReadRandomWorkload(func(harness.RunInfo) Store { return db }, cfg)
	return resultFromMeasurement(harness.Measure(w, engineConfig(cfg)))
}
