package kvstore

import (
	"fmt"
	"sync"
)

// stripeTable is the striped lock table behind every cross-shard
// operation: one stripe per shard, aliasing the shard's own guarding
// lock, so a cross-shard operation and the single-shard fast path
// contend on exactly the same locks.
//
// Deadlock freedom rests on one discipline: every multi-stripe
// acquisition takes its stripes in canonical ascending shard order
// (and releases in descending order). lockSet enforces the discipline
// rather than trusting its callers — a non-ascending index sequence
// panics, so an ordering bug surfaces as an immediate, attributable
// failure instead of a rare deadlock. The regression test
// TestStripeCanonicalOrder pins both halves: the enforcement and the
// actual acquisition order.
type stripeTable struct {
	locks []sync.Locker
}

// lockSet acquires the stripes named by idxs, which must be strictly
// ascending (callers sort and dedupe; Write does both in one pass).
func (t *stripeTable) lockSet(idxs []int) {
	prev := -1
	for _, i := range idxs {
		if i <= prev {
			panic(fmt.Sprintf("kvstore: stripe acquisition out of canonical order: %d after %d (set %v)", i, prev, idxs))
		}
		prev = i
		t.locks[i].Lock()
	}
}

// unlockSet releases the stripes named by idxs (an ascending set, as
// passed to lockSet) in descending order.
func (t *stripeTable) unlockSet(idxs []int) {
	for i := len(idxs) - 1; i >= 0; i-- {
		t.locks[idxs[i]].Unlock()
	}
}
