package kvstore

import (
	"fmt"
	"sync"

	"repro/internal/rwlock"
)

// stripeTable is the striped lock table behind every cross-shard
// operation: one stripe per shard, aliasing the shard's own guarding
// lock, so a cross-shard operation and the single-shard fast path
// contend on exactly the same locks.
//
// Deadlock freedom rests on one discipline: every multi-stripe
// acquisition takes its stripes in canonical ascending shard order
// (and releases in descending order). lockSet enforces the discipline
// rather than trusting its callers — a non-ascending index sequence
// panics, so an ordering bug surfaces as an immediate, attributable
// failure instead of a rare deadlock. The regression test
// TestStripeCanonicalOrder pins both halves: the enforcement and the
// actual acquisition order.
type stripeTable struct {
	locks []sync.Locker

	// rlocks aliases locks through their shared-read surface, non-nil
	// exactly when every stripe actually admits concurrent readers
	// (rwlock.IsReadShared). When nil, the read-set entry points fall
	// back to exclusive acquisition — correct, just unshared.
	rlocks []rwlock.RWLocker
}

// newStripeTable builds the table, resolving the shared-read surface
// once so the per-operation paths need no interface probing.
func newStripeTable(locks []sync.Locker) stripeTable {
	t := stripeTable{locks: locks}
	rlocks := make([]rwlock.RWLocker, len(locks))
	for i, l := range locks {
		r, ok := l.(rwlock.RWLocker)
		if !ok || !rwlock.IsReadShared(l) {
			return t
		}
		rlocks[i] = r
	}
	t.rlocks = rlocks
	return t
}

// lockSet acquires the stripes named by idxs, which must be strictly
// ascending (callers sort and dedupe; Write does both in one pass).
func (t *stripeTable) lockSet(idxs []int) {
	prev := -1
	for _, i := range idxs {
		if i <= prev {
			panic(fmt.Sprintf("kvstore: stripe acquisition out of canonical order: %d after %d (set %v)", i, prev, idxs))
		}
		prev = i
		t.locks[i].Lock()
	}
}

// unlockSet releases the stripes named by idxs (an ascending set, as
// passed to lockSet) in descending order.
func (t *stripeTable) unlockSet(idxs []int) {
	for i := len(idxs) - 1; i >= 0; i-- {
		t.locks[idxs[i]].Unlock()
	}
}

// rlockSet acquires the stripes named by idxs for shared reading,
// under the same strictly-ascending discipline as lockSet; it falls
// back to exclusive acquisition when the stripes do not share. Mixing
// shared and exclusive acquirers stays deadlock-free under the
// canonical order: shared admissions never block each other, so every
// blocking edge still points from a lower stripe to a higher one.
func (t *stripeTable) rlockSet(idxs []int) {
	if t.rlocks == nil {
		t.lockSet(idxs)
		return
	}
	prev := -1
	for _, i := range idxs {
		if i <= prev {
			panic(fmt.Sprintf("kvstore: stripe acquisition out of canonical order: %d after %d (set %v)", i, prev, idxs))
		}
		prev = i
		t.rlocks[i].RLock()
	}
}

// runlockSet releases a shared stripe set (an ascending set, as passed
// to rlockSet) in descending order.
func (t *stripeTable) runlockSet(idxs []int) {
	if t.rlocks == nil {
		t.unlockSet(idxs)
		return
	}
	for i := len(idxs) - 1; i >= 0; i-- {
		t.rlocks[idxs[i]].RUnlock()
	}
}
