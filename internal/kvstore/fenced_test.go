package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestFenced(shards int) *Fenced {
	return NewFenced(OpenSharded(ShardedOptions{
		Shards:  shards,
		NewLock: func() sync.Locker { return &sync.Mutex{} },
	}))
}

// Admitted writes land in the store and advance the fence; equal
// epochs re-admit (one lease writes many times under one token).
func TestFencedApplyAdvances(t *testing.T) {
	f := newTestFenced(4)
	key := []byte("k")
	shard := f.Store().ShardIndex(key)

	if err := f.Apply(key, []byte("v1"), 1); err != nil {
		t.Fatalf("Apply(epoch 1): %v", err)
	}
	if got := f.Fence(shard); got != 1 {
		t.Fatalf("fence = %d after epoch-1 apply, want 1", got)
	}
	if err := f.Apply(key, []byte("v1b"), 1); err != nil {
		t.Fatalf("Apply(equal epoch): %v", err)
	}
	if err := f.Apply(key, []byte("v3"), 3); err != nil {
		t.Fatalf("Apply(epoch 3): %v", err)
	}
	if got := f.Fence(shard); got != 3 {
		t.Fatalf("fence = %d after epoch-3 apply, want 3", got)
	}
	if v, ok := f.Get(key); !ok || string(v) != "v3" {
		t.Fatalf("Get = %q, %v; want v3", v, ok)
	}
}

// A write carrying a token below the shard fence is rejected with
// ErrStaleFence, leaves the store untouched, and is recorded as stale
// and unapplied.
func TestFencedStaleRejected(t *testing.T) {
	f := newTestFenced(4)
	var recs []ApplyRecord
	f.OnApply = func(r ApplyRecord) { recs = append(recs, r) }
	key := []byte("k")

	if err := f.Apply(key, []byte("new"), 5); err != nil {
		t.Fatalf("Apply(epoch 5): %v", err)
	}
	err := f.Apply(key, []byte("stale"), 3)
	if !errors.Is(err, ErrStaleFence) {
		t.Fatalf("Apply(epoch 3) = %v, want ErrStaleFence", err)
	}
	if v, _ := f.Get(key); string(v) != "new" {
		t.Fatalf("stale write reached the store: Get = %q", v)
	}
	if got := f.Fence(f.Store().ShardIndex(key)); got != 5 {
		t.Fatalf("fence moved on rejection: %d", got)
	}
	if len(recs) != 2 {
		t.Fatalf("OnApply saw %d records, want 2", len(recs))
	}
	if r := recs[1]; !r.Stale || r.Applied || r.Epoch != 3 || r.Fence != 5 {
		t.Fatalf("stale record = %+v", r)
	}
	if r := recs[0]; r.Stale || !r.Applied || r.Fence != 0 {
		t.Fatalf("fresh record = %+v", r)
	}
}

// Advance raises the fence without a write — subsequent older-epoch
// writes are stale even though the new holder has not written yet —
// and is monotone.
func TestFencedAdvance(t *testing.T) {
	f := newTestFenced(2)
	key := []byte("x")
	shard := f.Store().ShardIndex(key)

	if got := f.Advance(shard, 7); got != 7 {
		t.Fatalf("Advance(7) = %d", got)
	}
	if got := f.Advance(shard, 4); got != 7 {
		t.Fatalf("Advance(4) lowered the fence: %d", got)
	}
	if err := f.Apply(key, []byte("old"), 6); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("Apply(epoch 6) after Advance(7) = %v, want ErrStaleFence", err)
	}
	if _, ok := f.Get(key); ok {
		t.Fatal("stale write visible after Advance gate")
	}
	if err := f.Apply(key, []byte("cur"), 7); err != nil {
		t.Fatalf("Apply(epoch 7): %v", err)
	}
}

// DisableFencing applies stale writes and surfaces the violation in
// the record stream — the hook the cluster checkers (and the negative
// test proving they work) depend on.
func TestFencedDisableFencing(t *testing.T) {
	f := newTestFenced(4)
	f.DisableFencing = true
	var recs []ApplyRecord
	f.OnApply = func(r ApplyRecord) { recs = append(recs, r) }
	key := []byte("k")

	if err := f.Apply(key, []byte("new"), 5); err != nil {
		t.Fatalf("Apply(epoch 5): %v", err)
	}
	if err := f.Apply(key, []byte("stale"), 3); err != nil {
		t.Fatalf("Apply(epoch 3) with fencing off = %v, want nil", err)
	}
	if v, _ := f.Get(key); string(v) != "stale" {
		t.Fatalf("Get = %q, want the stale write applied", v)
	}
	if r := recs[1]; !r.Stale || !r.Applied {
		t.Fatalf("violation record = %+v, want Stale && Applied", r)
	}
	if got := f.Fence(f.Store().ShardIndex(key)); got != 5 {
		t.Fatalf("stale apply moved the fence backwards: %d", got)
	}
}

// Fences are independent per shard: admitting a high epoch on one
// shard must not fence writes on another.
func TestFencedPerShard(t *testing.T) {
	f := newTestFenced(8)
	// Find two keys on different shards.
	a := []byte("a")
	var b []byte
	for i := 0; ; i++ {
		b = []byte(fmt.Sprintf("b%d", i))
		if f.Store().ShardIndex(b) != f.Store().ShardIndex(a) {
			break
		}
	}
	if err := f.Apply(a, []byte("va"), 100); err != nil {
		t.Fatal(err)
	}
	if err := f.Apply(b, []byte("vb"), 1); err != nil {
		t.Fatalf("epoch 1 on an untouched shard rejected: %v", err)
	}
}

// Under concurrent appliers the fence check and store write are one
// atomic step: no stale write is ever admitted, and the final fence is
// the maximum admitted epoch (run with -race).
func TestFencedConcurrentAtomic(t *testing.T) {
	f := newTestFenced(1)
	var mu sync.Mutex
	var violations int
	f.OnApply = func(r ApplyRecord) {
		if r.Stale && r.Applied {
			mu.Lock()
			violations++
			mu.Unlock()
		}
	}
	key := []byte("hot")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				epoch := uint64(w*perWorker + i + 1)
				_ = f.Apply(key, []byte{byte(w)}, epoch)
			}
		}(w)
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d stale writes were applied", violations)
	}
	if got, want := f.Fence(0), uint64(workers*perWorker); got != want {
		t.Fatalf("final fence = %d, want %d", got, want)
	}
}
