package kvstore

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzDBAgainstMap drives the DB through an op stream decoded from
// fuzz input and cross-checks every read against a map model. Freezes
// and compactions are forced by a tiny memtable.
func FuzzDBAgainstMap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 90, 17})
	f.Add([]byte("put/get/delete soup"))
	f.Add(bytes.Repeat([]byte{7, 3}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		db := Open(Options{MemTableBytes: 512, MaxRuns: 2})
		model := map[string]string{}
		for i := 0; i+1 < len(data); i += 2 {
			key := string(Key(uint64(data[i] % 64)))
			switch data[i+1] % 4 {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				db.Put([]byte(key), []byte(v))
				model[key] = v
			case 2:
				db.Delete([]byte(key))
				delete(model, key)
			case 3:
				got, ok := db.Get([]byte(key))
				want, wok := model[key]
				if ok != wok || (ok && string(got) != want) {
					t.Fatalf("Get(%x) = %q,%v; model %q,%v", key, got, ok, want, wok)
				}
			}
		}
		for k, want := range model {
			got, ok := db.Get([]byte(k))
			if !ok || string(got) != want {
				t.Fatalf("final Get(%x) = %q,%v; want %q", k, got, ok, want)
			}
		}
	})
}

// FuzzShardedBatch drives the sharded store with batched writes
// decoded from fuzz input and differentially checks it against a
// sequential model map: batches are applied atomically to both, reads
// compare, and a final iterator sweep must reproduce the model in
// sorted order with no duplicates (a torn or misrouted batch surfaces
// as a divergence). The shard count itself is fuzzed (1–9) so the
// coarse degenerate case and prime counts are all exercised.
func FuzzShardedBatch(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3, 4, 5, 250, 9})
	f.Add(uint8(1), []byte("coarse degenerate batch soup"))
	f.Add(uint8(7), bytes.Repeat([]byte{3, 1, 4, 1, 5, 9}, 20))
	f.Fuzz(func(t *testing.T, nShards uint8, data []byte) {
		shards := int(nShards%9) + 1
		db := OpenSharded(ShardedOptions{Shards: shards, MemTableBytes: 512, MaxRuns: 2})
		model := map[string]string{}
		var b Batch
		flush := func() {
			db.Write(&b)
			for _, op := range b.ops {
				if op.delete {
					delete(model, string(op.key))
				} else {
					model[string(op.key)] = string(op.value)
				}
			}
			b.Reset()
		}
		for i := 0; i+1 < len(data); i += 2 {
			key := Key(uint64(data[i] % 64))
			switch data[i+1] % 8 {
			case 0, 1, 2:
				b.Put(key, []byte(fmt.Sprintf("v%d", i)))
			case 3:
				b.Delete(key)
			case 4:
				flush()
			case 5:
				db.Put(key, []byte(fmt.Sprintf("p%d", i)))
				model[string(key)] = fmt.Sprintf("p%d", i)
			default:
				// Reads see every already-flushed batch; the pending
				// batch is invisible by construction on both sides.
				got, ok := db.Get(key)
				want, wok := model[string(key)]
				if ok != wok || (ok && string(got) != want) {
					t.Fatalf("Get(%x) = %q,%v; model %q,%v (shards=%d)", key, got, ok, want, wok, shards)
				}
			}
		}
		flush()
		// Iterator sweep: sorted, duplicate-free, and model-complete.
		it := db.NewIterator()
		var prev []byte
		n := 0
		for it.Next() {
			if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
				t.Fatalf("iterator out of order: %x then %x (shards=%d)", prev, it.Key(), shards)
			}
			want, ok := model[string(it.Key())]
			if !ok || want != string(it.Value()) {
				t.Fatalf("iterator yields %x=%q; model %q,%v (shards=%d)", it.Key(), it.Value(), want, ok, shards)
			}
			prev = append(prev[:0], it.Key()...)
			n++
		}
		if n != len(model) {
			t.Fatalf("iterator yielded %d entries, model has %d (shards=%d)", n, len(model), shards)
		}
	})
}

// FuzzSkipListOrdering: arbitrary insertions keep Ascend sorted and
// Get consistent.
func FuzzSkipListOrdering(f *testing.F) {
	f.Add([]byte{5, 1, 9, 1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		sl := NewSkipList()
		for _, b := range data {
			sl.Put([]byte{b}, []byte{b ^ 0xff})
		}
		var prev []byte
		sl.Ascend(func(k, v []byte, tomb bool) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("out of order: %x then %x", prev, k)
			}
			if len(v) != 1 || v[0] != k[0]^0xff {
				t.Fatalf("value mismatch for %x", k)
			}
			prev = append(prev[:0], k...)
			return true
		})
		for _, b := range data {
			if v, ok, _ := sl.Get([]byte{b}); !ok || v[0] != b^0xff {
				t.Fatalf("Get(%x) inconsistent", b)
			}
		}
	})
}
