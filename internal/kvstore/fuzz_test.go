package kvstore

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzDBAgainstMap drives the DB through an op stream decoded from
// fuzz input and cross-checks every read against a map model. Freezes
// and compactions are forced by a tiny memtable.
func FuzzDBAgainstMap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 200, 90, 17})
	f.Add([]byte("put/get/delete soup"))
	f.Add(bytes.Repeat([]byte{7, 3}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		db := Open(Options{MemTableBytes: 512, MaxRuns: 2})
		model := map[string]string{}
		for i := 0; i+1 < len(data); i += 2 {
			key := string(Key(uint64(data[i] % 64)))
			switch data[i+1] % 4 {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				db.Put([]byte(key), []byte(v))
				model[key] = v
			case 2:
				db.Delete([]byte(key))
				delete(model, key)
			case 3:
				got, ok := db.Get([]byte(key))
				want, wok := model[key]
				if ok != wok || (ok && string(got) != want) {
					t.Fatalf("Get(%x) = %q,%v; model %q,%v", key, got, ok, want, wok)
				}
			}
		}
		for k, want := range model {
			got, ok := db.Get([]byte(k))
			if !ok || string(got) != want {
				t.Fatalf("final Get(%x) = %q,%v; want %q", k, got, ok, want)
			}
		}
	})
}

// FuzzSkipListOrdering: arbitrary insertions keep Ascend sorted and
// Get consistent.
func FuzzSkipListOrdering(f *testing.F) {
	f.Add([]byte{5, 1, 9, 1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		sl := NewSkipList()
		for _, b := range data {
			sl.Put([]byte{b}, []byte{b ^ 0xff})
		}
		var prev []byte
		sl.Ascend(func(k, v []byte, tomb bool) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("out of order: %x then %x", prev, k)
			}
			if len(v) != 1 || v[0] != k[0]^0xff {
				t.Fatalf("value mismatch for %x", k)
			}
			prev = append(prev[:0], k...)
			return true
		})
		for _, b := range data {
			if v, ok, _ := sl.Get([]byte{b}); !ok || v[0] != b^0xff {
				t.Fatalf("Get(%x) inconsistent", b)
			}
		}
	})
}
