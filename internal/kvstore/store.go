package kvstore

// Store is the operation surface shared by the coarse DB and the
// ShardedDB: everything the benchmark workloads, the conformance
// properties, and the example applications need, so shard count is a
// configuration axis rather than a code path. Both implementations
// promise the same semantics — atomic batches, snapshot iterators,
// linearizable single-key operations — and differ only in how many
// locks guard the keyspace.
type Store interface {
	// Get looks up a key.
	Get(key []byte) ([]byte, bool)
	// Put inserts or updates a key.
	Put(key, value []byte)
	// Delete removes a key (tombstone).
	Delete(key []byte)
	// Write applies a batch atomically.
	Write(b *Batch)
	// NewIterator captures a consistent snapshot and returns a merging
	// iterator over it.
	NewIterator() *Iterator
	// Stats returns a snapshot of the activity counters.
	Stats() Stats
	// Runs reports the frozen-run count (diagnostics).
	Runs() int
}

var (
	_ Store = (*DB)(nil)
	_ Store = (*ShardedDB)(nil)
)
