package kvstore

import "bytes"

// iterSource is a cursor over one sorted source (memtable or run).
// Sources yield entries including tombstones; the merging iterator
// applies newest-wins and tombstone suppression.
type iterSource interface {
	// valid reports whether the cursor points at an entry.
	valid() bool
	// key/value/tombstone describe the current entry.
	key() []byte
	value() []byte
	tombstone() bool
	// next advances the cursor.
	next()
	// seek positions the cursor at the first entry >= k.
	seek(k []byte)
}

// slIter walks a skiplist's level-0 chain. Safe on a frozen or
// quiescent list; on the live memtable it sees a consistent prefix
// (insert-only structure), matching LevelDB iterator semantics.
type slIter struct {
	sl *SkipList
	n  *slNode
}

func (it *slIter) valid() bool { return it.n != nil }
func (it *slIter) key() []byte { return it.n.key }
func (it *slIter) value() []byte {
	return it.n.val.Load().data
}
func (it *slIter) tombstone() bool { return it.n.val.Load().tombstone }
func (it *slIter) next()           { it.n = it.n.next[0].Load() }
func (it *slIter) seek(k []byte) {
	var preds [maxHeight]*slNode
	it.n = it.sl.findPredecessors(k, &preds)
}

// runIter walks an immutable sorted run.
type runIter struct {
	r   *Run
	idx int
}

func (it *runIter) valid() bool     { return it.idx < it.r.Len() }
func (it *runIter) key() []byte     { return it.r.keys[it.idx] }
func (it *runIter) value() []byte   { return it.r.vals[it.idx] }
func (it *runIter) tombstone() bool { return it.r.tombs[it.idx] }
func (it *runIter) next()           { it.idx++ }
func (it *runIter) seek(k []byte) {
	lo, hi := 0, it.r.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.r.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.idx = lo
}

// Iterator yields the database's live entries in ascending key order
// over a consistent snapshot (the memtable and run set captured at
// creation, exactly what a LevelDB iterator pins). Deleted keys are
// suppressed; among duplicate keys the newest source wins.
type Iterator struct {
	sources []iterSource // ordered newest first
	k, v    []byte
	ok      bool
}

// NewIterator captures a snapshot and positions the iterator before
// the first entry; call Next to advance. Like Get, the snapshot
// acquisition runs on the lock's shared-read surface when the lock
// admits concurrent readers.
func (db *DB) NewIterator() *Iterator {
	var mem *SkipList
	var runs []*Run
	if db.rmu != nil {
		db.rmu.RLock()
		mem, runs = db.mem, db.runs
		db.rmu.RUnlock()
	} else {
		db.mu.Lock()
		mem, runs = db.mem, db.runs
		db.mu.Unlock()
	}

	it := &Iterator{}
	m := &slIter{sl: mem}
	m.n = mem.head.next[0].Load()
	it.sources = append(it.sources, m)
	for _, r := range runs {
		it.sources = append(it.sources, &runIter{r: r})
	}
	return it
}

// Seek positions the iterator so the following Next returns the first
// live entry with key >= k.
func (it *Iterator) Seek(k []byte) {
	for _, s := range it.sources {
		s.seek(k)
	}
}

// Next advances to the next live entry, reporting false at the end.
func (it *Iterator) Next() bool {
	for {
		// Smallest current key across sources; ties resolve to the
		// newest (earliest) source.
		var best iterSource
		for _, s := range it.sources {
			if !s.valid() {
				continue
			}
			if best == nil || bytes.Compare(s.key(), best.key()) < 0 {
				best = s
			}
		}
		if best == nil {
			it.ok = false
			return false
		}
		k := append([]byte(nil), best.key()...)
		v := append([]byte(nil), best.value()...)
		tomb := best.tombstone()
		// Skip this key in every source (shadowed older versions).
		for _, s := range it.sources {
			for s.valid() && bytes.Equal(s.key(), k) {
				s.next()
			}
		}
		if tomb {
			continue
		}
		it.k, it.v, it.ok = k, v, true
		return true
	}
}

// Key returns the current entry's key (valid after a true Next).
func (it *Iterator) Key() []byte { return it.k }

// Value returns the current entry's value (valid after a true Next).
func (it *Iterator) Value() []byte { return it.v }
