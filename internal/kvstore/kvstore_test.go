package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/locks"
)

func TestSkipListBasics(t *testing.T) {
	sl := NewSkipList()
	if _, ok, _ := sl.Get([]byte("a")); ok {
		t.Fatal("empty list returned a value")
	}
	sl.Put([]byte("b"), []byte("2"))
	sl.Put([]byte("a"), []byte("1"))
	sl.Put([]byte("c"), []byte("3"))
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, ok, tomb := sl.Get([]byte(k))
		if !ok || tomb || string(v) != want {
			t.Fatalf("Get(%q) = %q,%v,%v", k, v, ok, tomb)
		}
	}
	sl.Put([]byte("b"), []byte("22"))
	if v, _, _ := sl.Get([]byte("b")); string(v) != "22" {
		t.Fatal("update did not replace value")
	}
	if sl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sl.Len())
	}
	sl.Delete([]byte("a"))
	if _, ok, tomb := sl.Get([]byte("a")); !ok || !tomb {
		t.Fatal("tombstone not visible")
	}
}

func TestSkipListOrderedAscend(t *testing.T) {
	sl := NewSkipList()
	for i := 99; i >= 0; i-- {
		sl.Put(Key(uint64(i)), []byte{byte(i)})
	}
	var prev []byte
	n := 0
	sl.Ascend(func(k, v []byte, tomb bool) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("Ascend out of order: %x then %x", prev, k)
		}
		prev = append(prev[:0], k...)
		n++
		return true
	})
	if n != 100 {
		t.Fatalf("Ascend visited %d, want 100", n)
	}
}

func TestSkipListMatchesMapModel(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		sl := NewSkipList()
		model := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("k%03d", op%200)
			switch (op >> 8) % 3 {
			case 0, 1:
				v := fmt.Sprintf("v%d", op)
				sl.Put([]byte(k), []byte(v))
				model[k] = v
			case 2:
				sl.Delete([]byte(k))
				delete(model, k)
			}
		}
		for k, want := range model {
			v, ok, tomb := sl.Get([]byte(k))
			if !ok || tomb || string(v) != want {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// One writer + concurrent readers: the LevelDB memtable contract.
func TestSkipListConcurrentReadsDuringWrites(t *testing.T) {
	sl := NewSkipList()
	const n = 5000
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := uint64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				if v, ok, _ := sl.Get(Key(i % n)); ok && len(v) != 1 {
					panic("torn value")
				}
				i += 7
			}
		}()
	}
	for i := 0; i < n; i++ {
		sl.Put(Key(uint64(i)), []byte{byte(i)})
	}
	close(done)
	wg.Wait()
	for i := 0; i < n; i++ {
		if _, ok, _ := sl.Get(Key(uint64(i))); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

func TestRunBuildAndGet(t *testing.T) {
	sl := NewSkipList()
	for i := 0; i < 50; i++ {
		sl.Put(Key(uint64(i*2)), []byte{byte(i)})
	}
	sl.Delete(Key(10))
	r := buildRun(sl)
	if r.Len() != 50 {
		t.Fatalf("run len %d, want 50", r.Len())
	}
	if v, tomb, ok := r.Get(Key(4)); !ok || tomb || v[0] != 2 {
		t.Fatalf("run Get(4) = %v %v %v", v, tomb, ok)
	}
	if _, tomb, ok := r.Get(Key(10)); !ok || !tomb {
		t.Fatal("tombstone not preserved in run")
	}
	if _, _, ok := r.Get(Key(5)); ok {
		t.Fatal("absent key found")
	}
}

func TestMergeRunsNewestWins(t *testing.T) {
	mk := func(kv map[int]string, dels ...int) *Run {
		sl := NewSkipList()
		for k, v := range kv {
			sl.Put(Key(uint64(k)), []byte(v))
		}
		for _, d := range dels {
			sl.Delete(Key(uint64(d)))
		}
		return buildRun(sl)
	}
	newest := mk(map[int]string{1: "new1", 3: "new3"}, 2)
	oldest := mk(map[int]string{1: "old1", 2: "old2", 4: "old4"})
	merged := mergeRuns([]*Run{newest, oldest})
	if v, _, ok := merged.Get(Key(1)); !ok || string(v) != "new1" {
		t.Fatalf("key 1 = %q, want new1", v)
	}
	if _, _, ok := merged.Get(Key(2)); ok {
		t.Fatal("tombstoned key survived full merge")
	}
	if v, _, ok := merged.Get(Key(4)); !ok || string(v) != "old4" {
		t.Fatalf("key 4 = %q, want old4", v)
	}
	if merged.Len() != 3 {
		t.Fatalf("merged len %d, want 3 (1,3,4)", merged.Len())
	}
}

func TestDBPutGetDelete(t *testing.T) {
	db := Open(Options{})
	db.Put([]byte("k"), []byte("v"))
	if v, ok := db.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	db.Delete([]byte("k"))
	if _, ok := db.Get([]byte("k")); ok {
		t.Fatal("deleted key visible")
	}
	s := db.Stats()
	if s.Puts != 1 || s.Deletes != 1 || s.Gets != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// Freezing and compaction must preserve the full dataset.
func TestDBFreezeAndCompact(t *testing.T) {
	db := Open(Options{MemTableBytes: 4 << 10, MaxRuns: 2})
	const n = 2000
	FillSeq(db, n, 64)
	if db.Stats().Freezes == 0 {
		t.Fatal("no freezes despite tiny memtable")
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("no compactions despite MaxRuns=2")
	}
	for i := 0; i < n; i++ {
		if v, ok := db.Get(Key(uint64(i))); !ok || len(v) != 64 {
			t.Fatalf("key %d missing after freeze/compact", i)
		}
	}
	// Overwrites and deletes spanning generations.
	db.Put(Key(5), []byte("fresh"))
	db.Delete(Key(6))
	if v, ok := db.Get(Key(5)); !ok || string(v) != "fresh" {
		t.Fatal("overwrite lost")
	}
	if _, ok := db.Get(Key(6)); ok {
		t.Fatal("delete lost")
	}
}

func TestDBMatchesMapModel(t *testing.T) {
	err := quick.Check(func(ops []uint32) bool {
		db := Open(Options{MemTableBytes: 1 << 10, MaxRuns: 2})
		model := map[string]string{}
		for _, op := range ops {
			k := string(Key(uint64(op % 100)))
			switch (op >> 16) % 4 {
			case 0, 1, 2:
				v := fmt.Sprintf("v%d", op)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			case 3:
				db.Delete([]byte(k))
				delete(model, k)
			}
		}
		for k, want := range model {
			v, ok := db.Get([]byte(k))
			if !ok || string(v) != want {
				return false
			}
		}
		for i := 100; i < 110; i++ {
			if _, ok := db.Get(Key(uint64(i))); ok {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

// The Figure 3 scenario end to end, with different lock algorithms
// guarding the store.
func TestReadRandomUnderVariousLocks(t *testing.T) {
	for _, lk := range []struct {
		name string
		mk   func() sync.Locker
	}{
		{"Recipro", nil},
		{"TKT", func() sync.Locker { return new(locks.TicketLock) }},
		{"MCS", func() sync.Locker { return new(locks.MCSLock) }},
	} {
		lk := lk
		t.Run(lk.name, func(t *testing.T) {
			opts := Options{MemTableBytes: 32 << 10}
			if lk.mk != nil {
				opts.Lock = lk.mk()
			}
			db := Open(opts)
			FillSeq(db, 2000, 100)
			res := ReadRandom(db, ReadRandomConfig{
				Threads: 4, Keyspace: 2500, OpsPerThread: 2000, Seed: 9,
			})
			if res.Ops != 4*2000 {
				t.Fatalf("ops = %d", res.Ops)
			}
			// 2000 of 2500 keys exist: hit rate should be near 80%.
			rate := float64(res.Hits) / float64(res.Ops)
			if rate < 0.75 || rate > 0.85 {
				t.Fatalf("hit rate %.3f, want ≈0.80", rate)
			}
			if res.Mops <= 0 {
				t.Fatal("no throughput")
			}
		})
	}
}

func TestReadWhileWriting(t *testing.T) {
	db := Open(Options{MemTableBytes: 16 << 10})
	FillSeq(db, 3000, 64)
	res, wops := ReadWhileWriting(db, ReadRandomConfig{
		Threads: 3, Keyspace: 3000, OpsPerThread: 3000, Seed: 4,
	}, 64)
	if res.Ops != 3*3000 {
		t.Fatalf("reader ops = %d", res.Ops)
	}
	if wops == 0 {
		t.Fatal("writer made no progress while readers ran")
	}
	// All keys remain visible (overwrites only).
	for i := 0; i < 3000; i++ {
		if _, ok := db.Get(Key(uint64(i))); !ok {
			t.Fatalf("key %d lost during readwhilewriting", i)
		}
	}
}

// Concurrent writers and readers under the coarse lock.
func TestDBConcurrentMixedWorkload(t *testing.T) {
	db := Open(Options{MemTableBytes: 8 << 10})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				db.Put(Key(uint64(w*3000+i)), []byte("x"))
			}
		}()
	}
	for r := 0; r < 4; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				db.Get(Key(uint64((r*7 + i) % 6000)))
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 6000; i++ {
		if _, ok := db.Get(Key(uint64(i))); !ok {
			t.Fatalf("key %d lost under concurrency", i)
		}
	}
}
