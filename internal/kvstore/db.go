// Package kvstore is an LSM-lite in-memory key-value store built as
// the Figure 3 substrate, offered at two locking granularities behind
// one Store interface:
//
//   - DB is the faithful Figure 3 shape: like LevelDB, the entire
//     database is guarded by one coarse central mutex (DBImpl::Mutex),
//     acquired briefly to snapshot state on the read path and for the
//     whole write path.
//   - ShardedDB hash-partitions the keyspace across independent
//     shards, each its own DB guarded by its own lock, with a striped
//     lock table (canonical ascending acquisition order) making
//     cross-shard batches and iterator snapshots atomic and
//     deadlock-free.
//
// In both shapes the guarding lock is pluggable from the
// internal/registry catalog, so the §7.3 readrandom experiment can
// vary the lock algorithm — and now the shard count — under an
// unmodified application, just as the paper's LD_PRELOAD interposition
// does.
//
// Structure (per shard): an active memtable (concurrent-read
// skiplist), a stack of frozen sorted runs (SSTable stand-ins), and a
// full merge when the run count exceeds a threshold. Reads consult
// memtable then runs newest-first; deletion uses tombstones.
package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/rwlock"
)

// Chaos points. kvstore.put and kvstore.freeze fire while holding the
// store's mutex (per shard, in a ShardedDB), stretching hold times to
// amplify contention;
// kvstore.snapshot fires between Get's snapshot and its lock-free
// search, widening the window in which a stale snapshot must stay
// consistent under concurrent freezes and compactions.
var (
	chKvPut      = chaos.NewPoint("kvstore.put")
	chKvFreeze   = chaos.NewPoint("kvstore.freeze")
	chKvSnapshot = chaos.NewPoint("kvstore.snapshot")

	siteKvPut      = chKvPut.Site("DB.Put")
	siteKvFreeze   = chKvFreeze.Site("DB.maybeFreezeLocked")
	siteKvSnapshot = chKvSnapshot.Site("DB.Get")
)

// Options configures a DB.
type Options struct {
	// Lock guards the database; nil selects the Reciprocating Lock
	// (or the LockName catalog entry, when set).
	Lock sync.Locker
	// LockName selects the guarding lock from the repository catalog
	// (internal/registry) by name or alias when Lock is nil. Unknown
	// names panic in Open. Empty means the default.
	LockName string
	// MemTableBytes is the freeze threshold (default 1 MiB).
	MemTableBytes int
	// MaxRuns triggers a full merge when exceeded (default 4).
	MaxRuns int
}

// Stats counts DB activity. Write-path counters (Puts, Deletes,
// Freezes, Compactions) are guarded by the store lock; read-path
// counters (Gets, Hits, Misses) are updated atomically because shared
// readers record them concurrently when the lock admits read sharing.
type Stats struct {
	Gets, Puts, Deletes  uint64
	Hits, Misses         uint64
	Freezes, Compactions uint64
}

// DB is the database.
type DB struct {
	mu   sync.Locker
	opts Options

	// rmu is mu's shared-read surface, non-nil exactly when the
	// configured lock actually admits concurrent readers
	// (rwlock.IsReadShared, not just the structural interface). When
	// set, Get and NewIterator snapshot state under RLock instead of
	// Lock, so readers stop serializing through the writer's lock word.
	rmu rwlock.RWLocker

	// Guarded by mu (shared readers hold rmu); Get snapshots mem+runs
	// under the lock and searches outside it (LevelDB's Get pattern).
	mem   *SkipList
	runs  []*Run
	stats Stats
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.Lock == nil && opts.LockName != "" {
		lf, ok := registry.Lookup(opts.LockName)
		if !ok {
			panic(fmt.Sprintf("kvstore: unknown Options.LockName %q", opts.LockName))
		}
		opts.Lock = lf.New()
	}
	if opts.Lock == nil {
		opts.Lock = new(core.Lock)
	}
	if opts.MemTableBytes <= 0 {
		opts.MemTableBytes = 1 << 20
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 4
	}
	db := &DB{mu: opts.Lock, opts: opts, mem: NewSkipList()}
	if r, ok := opts.Lock.(rwlock.RWLocker); ok && rwlock.IsReadShared(opts.Lock) {
		db.rmu = r
	}
	return db
}

// Put inserts or updates a key.
func (db *DB) Put(key, value []byte) {
	db.mu.Lock()
	siteKvPut.Hit()
	db.mem.Put(key, value)
	db.stats.Puts++
	db.maybeFreezeLocked()
	db.mu.Unlock()
}

// Delete removes a key (tombstone).
func (db *DB) Delete(key []byte) {
	db.mu.Lock()
	db.mem.Delete(key)
	db.stats.Deletes++
	db.maybeFreezeLocked()
	db.mu.Unlock()
}

// maybeFreezeLocked freezes a full memtable into a run and compacts
// when the run stack grows too tall. Caller holds mu.
func (db *DB) maybeFreezeLocked() {
	if db.mem.Bytes() < db.opts.MemTableBytes {
		return
	}
	siteKvFreeze.Hit()
	frozen := buildRun(db.mem)
	// Newest first; replace the slice wholesale so concurrent readers
	// holding the previous snapshot stay consistent.
	db.runs = append([]*Run{frozen}, db.runs...)
	db.mem = NewSkipList()
	db.stats.Freezes++
	if len(db.runs) > db.opts.MaxRuns {
		db.runs = []*Run{mergeRuns(db.runs)}
		db.stats.Compactions++
	}
}

// Get looks up a key, mirroring leveldb::DBImpl::Get's locking
// pattern: take the central mutex to snapshot references, drop it for
// the actual search, and retake it to update statistics. When the
// configured lock admits shared readers the same two acquisitions run
// on the read path (RLock) instead, so concurrent Gets stop
// serializing on the lock word while writers keep full exclusion.
func (db *DB) Get(key []byte) ([]byte, bool) {
	if db.rmu != nil {
		return db.getShared(key)
	}
	db.mu.Lock()
	mem := db.mem
	runs := db.runs
	db.mu.Unlock()

	siteKvSnapshot.Hit()
	val, found := get(mem, runs, key)

	db.mu.Lock()
	db.recordGet(found)
	db.mu.Unlock()
	return val, found
}

// getShared is Get over the lock's shared-read surface: the same
// two-acquisition shape, both acquisitions shared. Snapshot
// consistency holds because RLock fully excludes writers, and the
// stats episode uses atomic counters because concurrent readers are
// admitted together.
func (db *DB) getShared(key []byte) ([]byte, bool) {
	db.rmu.RLock()
	mem := db.mem
	runs := db.runs
	db.rmu.RUnlock()

	siteKvSnapshot.Hit()
	val, found := get(mem, runs, key)

	db.rmu.RLock()
	db.recordGet(found)
	db.rmu.RUnlock()
	return val, found
}

// recordGet bumps the read-path counters. Atomic because in shared
// mode multiple readers record concurrently; harmless (and still
// cheap) under the exclusive lock.
func (db *DB) recordGet(found bool) {
	atomic.AddUint64(&db.stats.Gets, 1)
	if found {
		atomic.AddUint64(&db.stats.Hits, 1)
	} else {
		atomic.AddUint64(&db.stats.Misses, 1)
	}
}

// get searches a snapshot (memtable, then runs newest-first).
func get(mem *SkipList, runs []*Run, key []byte) ([]byte, bool) {
	if v, ok, tomb := mem.Get(key); ok {
		if tomb {
			return nil, false
		}
		return v, true
	}
	for _, r := range runs {
		if v, tomb, ok := r.Get(key); ok {
			if tomb {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}

// Stats returns a snapshot of the counters. The exclusive acquisition
// drains shared readers, so the snapshot is a consistent cut; the
// read-path counters are loaded atomically to pair with recordGet.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	s := Stats{
		Gets:        atomic.LoadUint64(&db.stats.Gets),
		Puts:        db.stats.Puts,
		Deletes:     db.stats.Deletes,
		Hits:        atomic.LoadUint64(&db.stats.Hits),
		Misses:      atomic.LoadUint64(&db.stats.Misses),
		Freezes:     db.stats.Freezes,
		Compactions: db.stats.Compactions,
	}
	db.mu.Unlock()
	return s
}

// Runs reports the current number of frozen runs (diagnostics).
func (db *DB) Runs() int {
	db.mu.Lock()
	n := len(db.runs)
	db.mu.Unlock()
	return n
}
