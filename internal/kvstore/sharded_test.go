package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// keyForShard returns a key owned by shard want (probing the dense
// Key space; the FNV hash spreads it well enough that a few probes
// suffice).
func keyForShard(s *ShardedDB, want int, from uint64) ([]byte, uint64) {
	for u := from; ; u++ {
		k := Key(u)
		if s.ShardIndex(k) == want {
			return k, u + 1
		}
	}
}

func TestShardedBasicOps(t *testing.T) {
	for _, shards := range []int{1, 2, 7, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := OpenSharded(ShardedOptions{Shards: shards, MemTableBytes: 512, MaxRuns: 2})
			if db.NumShards() != shards {
				t.Fatalf("NumShards = %d, want %d", db.NumShards(), shards)
			}
			const n = 500
			for i := 0; i < n; i++ {
				db.Put(Key(uint64(i)), []byte(fmt.Sprintf("v%d", i)))
			}
			for i := 0; i < n; i++ {
				v, ok := db.Get(Key(uint64(i)))
				if !ok || string(v) != fmt.Sprintf("v%d", i) {
					t.Fatalf("Get(%d) = %q,%v", i, v, ok)
				}
			}
			for i := 0; i < n; i += 3 {
				db.Delete(Key(uint64(i)))
			}
			for i := 0; i < n; i++ {
				_, ok := db.Get(Key(uint64(i)))
				if want := i%3 != 0; ok != want {
					t.Fatalf("after delete, Get(%d) ok=%v want %v", i, ok, want)
				}
			}
			st := db.Stats()
			if st.Puts != n || st.Gets != 2*n {
				t.Fatalf("stats = %+v, want %d puts / %d gets", st, n, 2*n)
			}
			if st.Freezes == 0 {
				t.Fatalf("tiny memtables never froze: %+v", st)
			}
		})
	}
}

// The sharded store must agree with the coarse store op for op —
// shard count is a locking decision, not a semantics decision.
func TestShardedMatchesCoarse(t *testing.T) {
	coarse := Open(Options{MemTableBytes: 1 << 10, MaxRuns: 2})
	sharded := OpenSharded(ShardedOptions{Shards: 8, MemTableBytes: 256, MaxRuns: 2})
	rng := xrand.NewXorShift64(42)
	for i := 0; i < 4000; i++ {
		k := Key(uint64(rng.Intn(128)))
		switch rng.Intn(5) {
		case 0, 1:
			v := []byte(fmt.Sprintf("v%d", i))
			coarse.Put(k, v)
			sharded.Put(k, v)
		case 2:
			coarse.Delete(k)
			sharded.Delete(k)
		case 3:
			var b Batch
			for j := 0; j < int(rng.Intn(6)); j++ {
				b.Put(Key(uint64(rng.Intn(128))), []byte(fmt.Sprintf("b%d.%d", i, j)))
			}
			coarse.Write(&b)
			sharded.Write(&b)
		default:
			cv, cok := coarse.Get(k)
			sv, sok := sharded.Get(k)
			if cok != sok || !bytes.Equal(cv, sv) {
				t.Fatalf("op %d: Get(%x) diverged: coarse %q,%v sharded %q,%v", i, k, cv, cok, sv, sok)
			}
		}
	}
	// Full-keyspace sweep plus iterator agreement.
	ci, si := coarse.NewIterator(), sharded.NewIterator()
	for {
		cn, sn := ci.Next(), si.Next()
		if cn != sn {
			t.Fatalf("iterator length mismatch: coarse %v sharded %v", cn, sn)
		}
		if !cn {
			break
		}
		if !bytes.Equal(ci.Key(), si.Key()) || !bytes.Equal(ci.Value(), si.Value()) {
			t.Fatalf("iterator diverged: coarse %x=%q sharded %x=%q",
				ci.Key(), ci.Value(), si.Key(), si.Value())
		}
	}
}

// A multi-key batch is atomic with respect to iterator snapshots:
// every key the batch wrote carries the same generation tag in any
// snapshot, no matter how the batch straddles shards.
func TestShardedBatchAtomicSnapshot(t *testing.T) {
	const shards = 8
	db := OpenSharded(ShardedOptions{Shards: shards, MemTableBytes: 2 << 10, MaxRuns: 2})

	// One key per shard, so every batch is maximally cross-shard.
	group := make([][]byte, shards)
	next := uint64(0)
	for s := 0; s < shards; s++ {
		group[s], next = keyForShard(db, s, next)
	}
	write := func(gen uint64) {
		var b Batch
		var v [8]byte
		binary.BigEndian.PutUint64(v[:], gen)
		for _, k := range group {
			b.Put(k, v[:])
		}
		db.Write(&b)
	}
	write(0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := uint64(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
				write(gen)
			}
		}
	}()
	for i := 0; i < 300; i++ {
		it := db.NewIterator()
		seen := map[uint64]int{}
		found := 0
		for it.Next() {
			for _, k := range group {
				if bytes.Equal(it.Key(), k) {
					seen[binary.BigEndian.Uint64(it.Value())]++
					found++
				}
			}
		}
		if found != shards {
			t.Fatalf("snapshot %d: found %d of %d group keys", i, found, shards)
		}
		if len(seen) != 1 {
			t.Fatalf("snapshot %d observed a torn batch: generations %v", i, seen)
		}
	}
	close(stop)
	wg.Wait()
}

func TestShardedIteratorSeek(t *testing.T) {
	db := OpenSharded(ShardedOptions{Shards: 4, MemTableBytes: 512, MaxRuns: 2})
	for i := 0; i < 200; i++ {
		db.Put(Key(uint64(i)), []byte{byte(i)})
	}
	it := db.NewIterator()
	it.Seek(Key(100))
	if !it.Next() {
		t.Fatal("Seek(100): no entry")
	}
	if !bytes.Equal(it.Key(), Key(100)) {
		t.Fatalf("Seek(100) landed on %x", it.Key())
	}
	n := 1
	for it.Next() {
		n++
	}
	if n != 100 {
		t.Fatalf("entries from 100: %d, want 100", n)
	}
}

// Hash partitioning must be total and stable: every key maps to
// exactly one in-range shard, and ShardIndex agrees with where Put
// actually stored the key.
func TestShardIndexPartition(t *testing.T) {
	db := OpenSharded(ShardedOptions{Shards: 5, MemTableBytes: 64 << 10})
	counts := make([]int, 5)
	for i := 0; i < 2000; i++ {
		k := Key(uint64(i))
		si := db.ShardIndex(k)
		if si < 0 || si >= 5 {
			t.Fatalf("ShardIndex(%x) = %d out of range", k, si)
		}
		counts[si]++
		db.Put(k, []byte("x"))
		if got := db.ShardStats(si).Puts; got == 0 {
			t.Fatalf("key %x claimed by shard %d but shard has no puts", k, si)
		}
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys out of 2000 (broken hash spread): %v", s, counts)
		}
	}
	var total uint64
	for s := 0; s < 5; s++ {
		total += db.ShardStats(s).Puts
	}
	if total != 2000 {
		t.Fatalf("per-shard puts sum to %d, want 2000", total)
	}
}

func TestOpenShardedLockName(t *testing.T) {
	db := OpenSharded(ShardedOptions{Shards: 3, LockName: "MCS"})
	db.Put([]byte("k"), []byte("v"))
	if v, ok := db.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown LockName did not panic")
		}
	}()
	OpenSharded(ShardedOptions{Shards: 2, LockName: "no-such-lock"})
}
