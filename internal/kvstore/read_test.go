package kvstore

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/registry"
	"repro/internal/rwlock"
)

// Open must resolve the shared-read surface exactly when the
// configured lock actually shares — a decorator whose RLock is the
// exclusive fallback satisfies the interface structurally but must not
// flip the store into shared-read mode.
func TestOpenResolvesSharedReadSurface(t *testing.T) {
	if db := Open(Options{}); db.rmu != nil {
		t.Fatal("default exclusive lock resolved a shared-read surface")
	}
	if db := Open(Options{LockName: "rw:Recipro"}); db.rmu == nil {
		t.Fatal("rw:Recipro did not resolve a shared-read surface")
	}
	l, err := registry.Build("RW-Recipro", registry.WithBounded(), registry.WithStats(nil))
	if err != nil {
		t.Fatal(err)
	}
	if db := Open(Options{Lock: l}); db.rmu == nil {
		t.Fatal("fully decorated RW lock did not resolve a shared-read surface")
	}
	excl, err := registry.Build("GoMutex", registry.WithBounded(), registry.WithStats(nil))
	if err != nil {
		t.Fatal(err)
	}
	if db := Open(Options{Lock: excl}); db.rmu != nil {
		t.Fatal("decorator's exclusive-fallback RLock was mistaken for real sharing")
	}
}

// The shared read path must agree with the exclusive one: same
// results, same counters, under concurrent readers and writers (the
// race tier runs this with -race, which checks the RW adapter's
// happens-before edges around the snapshot).
func TestSharedGetMatchesExclusive(t *testing.T) {
	const keys = 512
	db := Open(Options{LockName: "rw:Recipro", MemTableBytes: 16 << 10})
	FillSeq(db, keys, 32)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		val := []byte("overwrite")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.Put(Key(uint64(i%keys)), val)
		}
	}()
	const readers, per = 4, 2000
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64((i + r) % (2 * keys))
				v, ok := db.Get(Key(k))
				if k < keys {
					if !ok {
						// Every key < keys is live (Put only overwrites).
						panic("shared Get missed a live key")
					}
					_ = v
				} else if ok {
					panic("shared Get found a never-written key")
				}
			}
		}(r)
	}
	close(stop)
	wg.Wait()

	st := db.Stats()
	if st.Gets != readers*per {
		t.Fatalf("Gets = %d, want %d", st.Gets, readers*per)
	}
	if st.Hits+st.Misses != st.Gets {
		t.Fatalf("Hits(%d)+Misses(%d) != Gets(%d)", st.Hits, st.Misses, st.Gets)
	}
}

// The sharded iterator snapshot runs on the stripe table's shared-read
// set when every shard lock shares; the snapshot must still be atomic
// with respect to cross-shard batches.
func TestShardedSharedSnapshotExcludesBatches(t *testing.T) {
	s := OpenSharded(ShardedOptions{Shards: 4, LockName: "rw:Recipro", MemTableBytes: 16 << 10})
	if s.table.rlocks == nil {
		t.Fatal("rw:Recipro shards did not resolve the stripe read set")
	}

	// Batches write the same value to one key per shard; a snapshot
	// must never observe a torn batch (mixed generations).
	keys := make([][]byte, s.NumShards())
	seen := 0
	for i := 0; seen < len(keys); i++ {
		k := Key(uint64(i))
		if si := s.ShardIndex(k); keys[si] == nil {
			keys[si] = k
			seen++
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var gen uint64
		val := make([]byte, 8)
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen++
			binary.BigEndian.PutUint64(val, gen)
			b := &Batch{}
			for _, k := range keys {
				b.Put(k, val)
			}
			s.Write(b)
		}
	}()
	for i := 0; i < 200; i++ {
		it := s.NewIterator()
		var first []byte
		matched := 0
		for it.Next() {
			for _, k := range keys {
				if string(it.Key()) == string(k) {
					if first == nil {
						first = append([]byte(nil), it.Value()...)
					} else if string(it.Value()) != string(first) {
						close(stop)
						wg.Wait()
						t.Fatalf("snapshot observed a torn cross-shard batch: %x vs %x", first, it.Value())
					}
					matched++
				}
			}
		}
		if matched != 0 && matched != len(keys) {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot saw %d of %d batch keys", matched, len(keys))
		}
	}
	close(stop)
	wg.Wait()
}

// The shared-read Get path must stay allocation-free, like the
// exclusive path it replaces: the RW adapter's read fast path is two
// atomic loads and an add, and the stats episode is atomic counters.
func TestSharedGetAddsNoAllocs(t *testing.T) {
	const keys = 2048
	db := Open(Options{LockName: "rw:Recipro", MemTableBytes: 64 << 10})
	if db.rmu == nil {
		t.Fatal("rw:Recipro did not resolve a shared-read surface")
	}
	FillSeq(db, keys, 32)
	i := uint64(0)
	k := Key(0)
	if n := testing.AllocsPerRun(2000, func() {
		binary.BigEndian.PutUint64(k[8:], i%keys)
		db.Get(k)
		i++
	}); n > 0 {
		t.Fatalf("shared Get hot path allocates %.2f allocs/op, want 0", n)
	}
}

// The bench harness's read-fraction knob must actually mix writes into
// the loop — on both the shared-read store and the exclusive one — and
// keep the op accounting exact in deterministic mode.
func TestReadRandomReadFracMixes(t *testing.T) {
	for _, lockName := range []string{"rw:Recipro", ""} {
		lockName := lockName
		name := lockName
		if name == "" {
			name = "default-exclusive"
		}
		t.Run(name, func(t *testing.T) {
			db := Open(Options{LockName: lockName, MemTableBytes: 64 << 10})
			FillSeq(db, 1000, 32)
			res := ReadRandom(db, ReadRandomConfig{
				Threads:      2,
				Keyspace:     1000,
				OpsPerThread: 2000,
				ReadFrac:     0.9,
				Seed:         7,
			})
			if res.Ops != 2*2000 {
				t.Fatalf("ops = %d, want %d", res.Ops, 2*2000)
			}
			st := db.Stats()
			if st.Puts <= 1000 {
				t.Fatalf("Puts = %d: read-frac mix performed no writes beyond the fill", st.Puts)
			}
			if st.Gets == 0 || st.Gets+st.Puts-1000 != res.Ops {
				t.Fatalf("Gets(%d) + mixed Puts(%d) != ops(%d)", st.Gets, st.Puts-1000, res.Ops)
			}
		})
	}
}

// Interface pin: the combinators built through the registry satisfy
// the store's shared-read requirements end to end.
var _ rwlock.RWLocker = (*rwlock.RW)(nil)
