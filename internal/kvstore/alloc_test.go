package kvstore

import (
	"encoding/binary"
	"testing"
)

// The sharded Get hot path — hash → shard → lock → lookup — must add
// zero allocations over the coarse path: the shard routing is pure
// arithmetic over the key bytes, and both paths share the same
// snapshot-then-search read protocol. A regression here (a hash that
// boxes, an interface conversion in shard()) would tax every read in
// every shard sweep.
func TestShardedGetAddsNoAllocs(t *testing.T) {
	const keys = 2048
	coarse := Open(Options{MemTableBytes: 64 << 10})
	sharded := OpenSharded(ShardedOptions{Shards: 8, MemTableBytes: 16 << 10})
	FillSeq(coarse, keys, 32)
	FillSeq(sharded, keys, 32)

	probe := func(db Store) float64 {
		i := uint64(0)
		k := Key(0)
		return testing.AllocsPerRun(2000, func() {
			binary.BigEndian.PutUint64(k[8:], i%keys)
			db.Get(k)
			i++
		})
	}
	base := probe(coarse)
	got := probe(sharded)
	if got > base {
		t.Fatalf("sharded Get allocates %.2f allocs/op vs coarse %.2f — the hot path grew an allocation", got, base)
	}
	// Both paths should be allocation-free outright with a reused key.
	if base > 0 || got > 0 {
		t.Fatalf("Get hot path allocates (coarse %.2f, sharded %.2f allocs/op)", base, got)
	}
}

// BenchmarkGetHotPath compares the same two paths under -bench with
// allocation reporting.
func BenchmarkGetHotPath(b *testing.B) {
	const keys = 2048
	for _, tc := range []struct {
		name string
		db   Store
	}{
		{"coarse", Open(Options{MemTableBytes: 64 << 10})},
		{"sharded8", OpenSharded(ShardedOptions{Shards: 8, MemTableBytes: 16 << 10})},
	} {
		FillSeq(tc.db, keys, 32)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			k := Key(0)
			for i := 0; i < b.N; i++ {
				binary.BigEndian.PutUint64(k[8:], uint64(i%keys))
				tc.db.Get(k)
			}
		})
	}
}
