package kvstore

import (
	"errors"
	"sync"

	"repro/internal/chaos"
)

// ErrStaleFence is returned by Fenced.Apply when the presented fencing
// token is below the shard's fence: a newer lease holder has already
// written (or the fence was advanced by a sync round), so the write
// must not be applied.
var ErrStaleFence = errors.New("kvstore: stale fencing token")

// Fencing chaos point: perturbs the admission gate itself (delays and
// preemptions between the fence check and the store write are exactly
// where a broken fencing protocol loses), labeled per call site.
var (
	chKvFence        = chaos.NewPoint("kvstore.fence")
	siteFenceApply   = chKvFence.Site("Fenced.Apply")
	siteFenceAdvance = chKvFence.Site("Fenced.Advance")
)

// ApplyRecord describes one write presented to a Fenced store — applied
// or rejected — for invariant checkers. The cluster simulation's
// no-stale-apply checker consumes these records: any record with Stale
// and Applied both true is a safety violation (reachable only through
// the DisableFencing knob, which exists so the negative test can prove
// the checker catches it).
type ApplyRecord struct {
	// Shard is the shard the key hashes to; fences are per shard.
	Shard int
	// Epoch is the fencing token presented with the write.
	Epoch uint64
	// Fence is the shard's fence at presentation time, before any
	// advance this write caused.
	Fence uint64
	// Key is the written key.
	Key string
	// Stale reports Epoch < Fence at presentation.
	Stale bool
	// Applied reports whether the write reached the store.
	Applied bool
}

// Fenced wraps a ShardedDB with per-shard fencing tokens (Kleppmann's
// fencing discipline): every write carries the monotonically increasing
// epoch of the lease under which it was issued, and a shard rejects
// writes whose epoch is below the highest it has admitted. The fence
// guarantees ordering — once a write from epoch e is admitted, no write
// from an earlier epoch can be — which is the strongest property a
// lease-based lock can offer without a consensus round per write: an
// expired holder can still slip a write in *before* the next epoch's
// first write arrives, but never after.
//
// The fence check and the store write are one atomic step per shard
// (a per-shard admission mutex), so a stale write can never interleave
// past a newer one's fence advance. Reads are unfenced: fencing
// protects the write path's ordering, and the cluster simulation's
// linearizability checking runs over applied writes.
type Fenced struct {
	db *ShardedDB

	// OnApply, when non-nil, observes every presented write (applied
	// or rejected). It is called under the shard's admission mutex so
	// records arrive in exact admission order per shard; it must not
	// call back into the same Fenced. Set before first use.
	OnApply func(ApplyRecord)

	// DisableFencing turns the admission gate off: stale writes are
	// applied (and recorded with Stale and Applied both true) instead
	// of rejected. Exists solely so tests can prove the invariant
	// checkers detect a fencing violation. Set before first use.
	DisableFencing bool

	mus    []sync.Mutex
	fences []uint64 // fences[i] guarded by mus[i]
}

// NewFenced wraps db with zeroed fences (every shard admits epoch 0).
func NewFenced(db *ShardedDB) *Fenced {
	n := db.NumShards()
	return &Fenced{db: db, mus: make([]sync.Mutex, n), fences: make([]uint64, n)}
}

// Store returns the wrapped ShardedDB (reads, iterators, stats).
func (f *Fenced) Store() *ShardedDB { return f.db }

// Get looks up a key in the wrapped store.
func (f *Fenced) Get(key []byte) ([]byte, bool) { return f.db.Get(key) }

// Fence reports shard i's current fence.
func (f *Fenced) Fence(i int) uint64 {
	f.mus[i].Lock()
	defer f.mus[i].Unlock()
	return f.fences[i]
}

// Apply presents a write under fencing token epoch. If epoch is at or
// above the shard's fence the write is applied and the fence advances
// to epoch; otherwise the write is rejected with ErrStaleFence (unless
// DisableFencing is set, in which case it is applied anyway and the
// violation is visible in the ApplyRecord). Equal epochs are admitted:
// one lease writes many times under one token.
func (f *Fenced) Apply(key, value []byte, epoch uint64) error {
	shard := f.db.ShardIndex(key)
	rec := ApplyRecord{Shard: shard, Epoch: epoch, Key: string(key)}

	f.mus[shard].Lock()
	siteFenceApply.Hit()
	rec.Fence = f.fences[shard]
	rec.Stale = epoch < rec.Fence
	if !rec.Stale || f.DisableFencing {
		if epoch > f.fences[shard] {
			f.fences[shard] = epoch
		}
		f.db.Put(key, value)
		rec.Applied = true
	}
	if f.OnApply != nil {
		f.OnApply(rec)
	}
	f.mus[shard].Unlock()

	if rec.Stale && !rec.Applied {
		return ErrStaleFence
	}
	return nil
}

// Advance raises shard i's fence to at least epoch without writing —
// the lock service's grant path and the simulation's sync rounds use
// it so a new holder's authority is visible before its first write.
// Advancing to a lower epoch is a no-op (fences are monotone). It
// returns the fence after the call.
func (f *Fenced) Advance(i int, epoch uint64) uint64 {
	f.mus[i].Lock()
	siteFenceAdvance.Hit()
	if epoch > f.fences[i] {
		f.fences[i] = epoch
	}
	cur := f.fences[i]
	f.mus[i].Unlock()
	return cur
}
