package kvstore

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestIteratorOrderedAcrossGenerations(t *testing.T) {
	db := Open(Options{MemTableBytes: 2 << 10, MaxRuns: 2})
	const n = 500
	// Insert in a scrambled order so entries span memtable + several
	// frozen/merged runs.
	for i := 0; i < n; i++ {
		k := (i * 7919) % n // 7919 prime, bijective mod n? ensure unique below
		db.Put(Key(uint64(k)), []byte(fmt.Sprintf("v%d", k)))
	}
	seen := map[string]bool{}
	it := db.NewIterator()
	var prev []byte
	count := 0
	for it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("iterator out of order: %x then %x", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		seen[string(it.Key())] = true
		count++
	}
	_ = seen
	if count == 0 {
		t.Fatal("iterator yielded nothing")
	}
	// Every distinct inserted key appears exactly once.
	distinct := map[int]bool{}
	for i := 0; i < n; i++ {
		distinct[(i*7919)%n] = true
	}
	if count != len(distinct) {
		t.Fatalf("iterator yielded %d keys, want %d", count, len(distinct))
	}
}

func TestIteratorNewestWinsAndTombstones(t *testing.T) {
	db := Open(Options{MemTableBytes: 1 << 10, MaxRuns: 3})
	for i := 0; i < 100; i++ {
		db.Put(Key(uint64(i)), []byte("old"))
	}
	// Overwrite some, delete others — spanning freezes.
	for i := 0; i < 100; i += 4 {
		db.Put(Key(uint64(i)), []byte("new"))
	}
	for i := 2; i < 100; i += 4 {
		db.Delete(Key(uint64(i)))
	}
	got := map[uint64]string{}
	it := db.NewIterator()
	for it.Next() {
		var id uint64
		for _, b := range it.Key() {
			id = id<<8 | uint64(b)
		}
		got[id] = string(it.Value())
	}
	for i := uint64(0); i < 100; i++ {
		want, present := "old", true
		switch i % 4 {
		case 0:
			want = "new"
		case 2:
			present = false
		}
		v, ok := got[i]
		if ok != present || (present && v != want) {
			t.Fatalf("key %d: got %q,%v want %q,%v", i, v, ok, want, present)
		}
	}
}

func TestIteratorSeek(t *testing.T) {
	db := Open(Options{MemTableBytes: 1 << 10})
	for i := 0; i < 200; i += 2 { // even keys only
		db.Put(Key(uint64(i)), []byte("x"))
	}
	it := db.NewIterator()
	it.Seek(Key(101)) // odd: next live is 102
	if !it.Next() {
		t.Fatal("Seek exhausted iterator")
	}
	if !bytes.Equal(it.Key(), Key(102)) {
		t.Fatalf("Seek(101) → %x, want key 102", it.Key())
	}
	// Seek beyond the end.
	it.Seek(Key(10_000))
	if it.Next() {
		t.Fatal("Seek past end still yields entries")
	}
}

func TestIteratorEmptyDB(t *testing.T) {
	db := Open(Options{})
	if db.NewIterator().Next() {
		t.Fatal("empty DB iterator yielded an entry")
	}
}

// Property: the iterator agrees with a map model after arbitrary
// put/delete sequences.
func TestIteratorMatchesModel(t *testing.T) {
	err := quick.Check(func(ops []uint32) bool {
		db := Open(Options{MemTableBytes: 512, MaxRuns: 2})
		model := map[string]string{}
		for _, op := range ops {
			k := string(Key(uint64(op % 50)))
			if (op>>16)%4 == 3 {
				db.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", op)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		var wantKeys []string
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		it := db.NewIterator()
		var gotKeys []string
		for it.Next() {
			gotKeys = append(gotKeys, string(it.Key()))
			if model[string(it.Key())] != string(it.Value()) {
				return false
			}
		}
		if len(gotKeys) != len(wantKeys) {
			return false
		}
		for i := range wantKeys {
			if gotKeys[i] != wantKeys[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
