// Package xrand supplies the pseudo-random number generators the paper
// relies on:
//
//   - MT19937, the 32-bit Mersenne Twister: the MutexBench critical
//     section advances a shared std::mt19937 one step and the moderate-
//     contention non-critical section advances a private one (§7.1).
//   - Marsaglia's xorshift64, suggested in Appendix G as the cheap
//     generator for Bernoulli succession trials.
//   - SplitMix64, used here to seed generators and for workload keys.
//   - HashPhi32, the Fibonacci (golden-ratio) hash from Appendix I's
//     counter-based lane-selection RNG.
//
// None of the generators is safe for concurrent use; callers that share
// one (as MutexBench deliberately does for its critical section) must
// hold a lock — that contention is the point of the benchmark.
package xrand

// MT19937 is the classic 32-bit Mersenne Twister of Matsumoto and
// Nishimura, matching std::mt19937: the C++ standard requires the
// 10000th output of a default-seeded (5489) instance to be 4123659995,
// which the test suite verifies.
type MT19937 struct {
	state [624]uint32
	index int
}

const (
	mtN          = 624
	mtM          = 397
	mtMatrixA    = 0x9908b0df
	mtUpperMask  = 0x80000000
	mtLowerMask  = 0x7fffffff
	mtDefaultSee = 5489
)

// NewMT19937 returns a generator seeded like std::mt19937's default
// constructor (seed 5489).
func NewMT19937() *MT19937 { return NewMT19937Seeded(mtDefaultSee) }

// NewMT19937Seeded returns a generator initialized with the given seed
// using the reference init_genrand recurrence.
func NewMT19937Seeded(seed uint32) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed reinitializes the generator state from seed.
func (m *MT19937) Seed(seed uint32) {
	m.state[0] = seed
	for i := 1; i < mtN; i++ {
		m.state[i] = 1812433253*(m.state[i-1]^(m.state[i-1]>>30)) + uint32(i)
	}
	m.index = mtN
}

// Uint32 advances the generator one step and returns the next tempered
// output word.
func (m *MT19937) Uint32() uint32 {
	if m.index >= mtN {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	y ^= y >> 11
	y ^= (y << 7) & 0x9d2c5680
	y ^= (y << 15) & 0xefc60000
	y ^= y >> 18
	return y
}

func (m *MT19937) generate() {
	s := &m.state
	for i := 0; i < mtN; i++ {
		y := (s[i] & mtUpperMask) | (s[(i+1)%mtN] & mtLowerMask)
		next := s[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		s[i] = next
	}
	m.index = 0
}

// Skip advances the generator n steps, discarding output. MutexBench's
// non-critical section uses this to burn a random amount of private
// work.
func (m *MT19937) Skip(n int) {
	for i := 0; i < n; i++ {
		m.Uint32()
	}
}

// Uint32n returns a uniform value in [0, n) using rejection-free
// multiply-shift (Lemire). n must be > 0.
func (m *MT19937) Uint32n(n uint32) uint32 {
	return uint32((uint64(m.Uint32()) * uint64(n)) >> 32)
}

// XorShift64 is Marsaglia's single-word xorshift generator, the
// "simple low-latency low-quality" PRNG Appendix G recommends for
// succession-direction Bernoulli trials.
type XorShift64 struct {
	x uint64
}

// NewXorShift64 returns a generator with the given nonzero seed; a zero
// seed is replaced with a fixed odd constant (xorshift has an all-zero
// fixed point).
func NewXorShift64(seed uint64) *XorShift64 {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &XorShift64{x: seed}
}

// Uint64 advances the generator and returns the next word.
func (r *XorShift64) Uint64() uint64 {
	x := r.x
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.x = x
	return x
}

// Bernoulli performs a trial that succeeds with probability p (clamped
// to [0,1]).
func (r *XorShift64) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	// Take 53 bits for a uniform float64 in [0,1).
	u := float64(r.Uint64()>>11) / (1 << 53)
	return u < p
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *XorShift64) Intn(n int) int {
	return int((uint64(uint32(r.Uint64())) * uint64(n)) >> 32)
}

// SplitMix64 is the Steele–Lea–Flood mixing generator; we use it to
// derive independent seeds and synthetic keys.
type SplitMix64 struct {
	x uint64
}

// NewSplitMix64 returns a generator starting at seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{x: seed} }

// Uint64 advances the generator and returns the next word.
func (r *SplitMix64) Uint64() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashPhi32 is the golden-ratio (Fibonacci) hash from Appendix I,
// used there as a counter-based RNG for random lane selection:
// uint64(v * 0x9e3779b9) >> 32 with C uint32 multiplication semantics.
func HashPhi32(v uint32) uint32 {
	return uint32((uint64(v) * 0x9e3779b9) >> 32)
}
