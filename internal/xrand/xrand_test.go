package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// The C++ standard (and the reference implementation) pin down MT19937
// exactly: a default-seeded generator's 10000th output is 4123659995.
func TestMT19937MatchesStdMt19937TenThousandth(t *testing.T) {
	m := NewMT19937()
	var v uint32
	for i := 0; i < 10000; i++ {
		v = m.Uint32()
	}
	if v != 4123659995 {
		t.Fatalf("10000th output = %d, want 4123659995", v)
	}
}

// First outputs of the reference implementation with default seed 5489.
func TestMT19937FirstOutputs(t *testing.T) {
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	m := NewMT19937()
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

func TestMT19937Deterministic(t *testing.T) {
	a := NewMT19937Seeded(12345)
	b := NewMT19937Seeded(12345)
	for i := 0; i < 2000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewMT19937Seeded(54321)
	same := 0
	a.Seed(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestMT19937SkipEquivalence(t *testing.T) {
	a := NewMT19937Seeded(99)
	b := NewMT19937Seeded(99)
	a.Skip(777)
	for i := 0; i < 777; i++ {
		b.Uint32()
	}
	if a.Uint32() != b.Uint32() {
		t.Fatal("Skip(n) diverged from n discarded Uint32 calls")
	}
}

func TestMT19937Uint32nRange(t *testing.T) {
	m := NewMT19937()
	err := quick.Check(func(n uint32) bool {
		if n == 0 {
			n = 1
		}
		v := m.Uint32n(n)
		return v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMT19937Uint32nUniformish(t *testing.T) {
	m := NewMT19937Seeded(7)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[m.Uint32n(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestXorShift64NonZeroAndPeriodic(t *testing.T) {
	r := NewXorShift64(1)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Uint64()
		if v == 0 {
			t.Fatal("xorshift64 emitted zero")
		}
		if seen[v] {
			t.Fatalf("xorshift64 repeated a value within 10000 steps at %d", i)
		}
		seen[v] = true
	}
}

func TestXorShift64ZeroSeedCoerced(t *testing.T) {
	r := NewXorShift64(0)
	if r.Uint64() == 0 {
		t.Fatal("zero-seeded xorshift stuck at zero")
	}
}

func TestXorShift64KnownSequence(t *testing.T) {
	// Hand-computed first step for seed 1:
	// x=1; x^=x<<13 -> 0x2001; x^=x>>7 -> 0x2001^0x40 = 0x2041;
	// x^=x<<17 -> 0x2041 ^ 0x4082_0000 = 0x4082_2041.
	r := NewXorShift64(1)
	if got := r.Uint64(); got != 0x40822041 {
		t.Fatalf("first output for seed 1 = %#x, want 0x40822041", got)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewXorShift64(42)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewXorShift64(42)
	const draws = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / draws
		if math.Abs(rate-p) > 0.01 {
			t.Errorf("Bernoulli(%v) empirical rate %v", p, rate)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewXorShift64(9)
	for n := 1; n < 100; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference outputs for seed 0 (e.g. from the canonical Java/C
	// implementations of Steele et al.).
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	r := NewSplitMix64(0)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestHashPhi32(t *testing.T) {
	// HashPhi32(v) = high 32 bits of v * 2^32/phi; check a couple of
	// directly computed values and distribution of low bit.
	if HashPhi32(0) != 0 {
		t.Fatal("HashPhi32(0) != 0")
	}
	if got := HashPhi32(1); got != 0 {
		// 0x9e3779b9 >> 32 == 0
		t.Fatalf("HashPhi32(1) = %d, want 0", got)
	}
	if got := HashPhi32(1 << 31); got != 0x4f1bbcdc {
		t.Fatalf("HashPhi32(2^31) = %#x, want 0x4f1bbcdc", got)
	}
	ones := 0
	for v := uint32(0); v < 100000; v++ {
		ones += int(HashPhi32(v) & 1)
	}
	if ones < 45000 || ones > 55000 {
		t.Fatalf("low bit of HashPhi32 biased: %d/100000 ones", ones)
	}
}

func TestHashPhi32LaneSelectionBalance(t *testing.T) {
	// Appendix I selects lanes via HashPhi32((++cbrn) ^ addr) & 1;
	// successive counter values must split roughly evenly.
	addr := uint32(0xdeadbeef)
	lane1 := 0
	const draws = 100000
	for c := uint32(1); c <= draws; c++ {
		lane1 += int(HashPhi32(c^addr) & 1)
	}
	if lane1 < draws*45/100 || lane1 > draws*55/100 {
		t.Fatalf("lane selection biased: %d/%d lane-1 picks", lane1, draws)
	}
}

func BenchmarkMT19937(b *testing.B) {
	m := NewMT19937()
	for i := 0; i < b.N; i++ {
		_ = m.Uint32()
	}
}

func BenchmarkXorShift64(b *testing.B) {
	r := NewXorShift64(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
