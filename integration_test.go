package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/atomicstruct"
	"repro/internal/kvstore"
	"repro/internal/lockstat"
	"repro/internal/mutexbench"
	"repro/internal/registry"
)

// Integration: the KV store must behave identically no matter which of
// every lock implementation in the repository catalog guards it.
func TestKVStoreUnderEveryLock(t *testing.T) {
	for _, lf := range registry.All() {
		lf := lf
		t.Run(lf.Name, func(t *testing.T) {
			db := kvstore.Open(kvstore.Options{Lock: lf.New(), MemTableBytes: 8 << 10})
			const n = 1500
			var wg sync.WaitGroup
			// Two writers partition the keyspace; four readers probe.
			for w := 0; w < 2; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < n; i++ {
						k := kvstore.Key(uint64(w*n + i))
						db.Put(k, []byte(fmt.Sprintf("v%d-%d", w, i)))
					}
				}()
			}
			for r := 0; r < 4; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < n; i++ {
						db.Get(kvstore.Key(uint64((r + i) % (2 * n))))
					}
				}()
			}
			wg.Wait()
			for w := 0; w < 2; w++ {
				for i := 0; i < n; i++ {
					v, ok := db.Get(kvstore.Key(uint64(w*n + i)))
					if !ok || string(v) != fmt.Sprintf("v%d-%d", w, i) {
						t.Fatalf("key (%d,%d) = %q,%v", w, i, v, ok)
					}
				}
			}
		})
	}
}

// Integration: the lock-striped atomic struct must not lose CAS-loop
// increments under any lock.
func TestAtomicStructUnderEveryLock(t *testing.T) {
	for _, lf := range registry.All() {
		lf := lf
		t.Run(lf.Name, func(t *testing.T) {
			stripe := atomicstruct.NewStripe(16, lf.New)
			a := atomicstruct.New[atomicstruct.S](stripe)
			var wg sync.WaitGroup
			const workers = 4
			const iters = 800
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						cur := a.Load()
						for {
							next := cur
							next.A++
							next.E--
							wit, ok := a.CompareExchange(cur, next)
							if ok {
								break
							}
							cur = wit
						}
					}
				}()
			}
			wg.Wait()
			got := a.Load()
			if got.A != workers*iters || got.E != -workers*iters {
				t.Fatalf("S = %+v, want A=%d E=%d", got, workers*iters, -workers*iters)
			}
		})
	}
}

// Integration: every lock variant, run under N-goroutine contention
// through the lockstat.Instrumented wrapper, must satisfy the
// telemetry invariants — acquisitions == unlocks == N*M, contended ≤
// total, and the latency histograms account for every episode.
func TestInstrumentedInvariantsEveryLock(t *testing.T) {
	const (
		goroutines = 6
		iters      = 300
	)
	for _, lf := range registry.All() {
		lf := lf
		t.Run(lf.Name, func(t *testing.T) {
			st := lockstat.New()
			l := lockstat.Wrap(lf.New(), st)
			var shared int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						shared++
						if i&31 == 0 {
							runtime.Gosched() // force queues to form
						}
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			const want = goroutines * iters
			if shared != want {
				t.Fatalf("mutual exclusion broken under wrapper: counter = %d, want %d", shared, want)
			}
			s := st.Snapshot()
			if s.Acquisitions != want || s.Unlocks != want {
				t.Errorf("acquisitions/unlocks = %d/%d, want %d/%d", s.Acquisitions, s.Unlocks, want, want)
			}
			if s.Contended > s.Acquisitions {
				t.Errorf("contended %d > acquisitions %d", s.Contended, s.Acquisitions)
			}
			if s.Handovers > s.Unlocks {
				t.Errorf("handovers %d > unlocks %d", s.Handovers, s.Unlocks)
			}
			if got := s.Acquire.Count(); got != s.Acquisitions {
				t.Errorf("acquire histogram count %d != acquisitions %d", got, s.Acquisitions)
			}
			if got := s.Hold.Count(); got != s.Unlocks {
				t.Errorf("hold histogram count %d != unlocks %d", got, s.Unlocks)
			}
			// Six goroutines on one lock must exhibit some contention.
			if s.Contended == 0 {
				t.Errorf("no contended acquisitions recorded across %d contended episodes", want)
			}
		})
	}
}

// Integration: MutexBench itself must count exactly under every lock
// (iteration mode is deterministic).
func TestMutexBenchExactCountsEveryLock(t *testing.T) {
	for _, lf := range registry.All() {
		lf := lf
		t.Run(lf.Name, func(t *testing.T) {
			res := mutexbench.Run(lf, mutexbench.Config{
				Threads:     5,
				Iterations:  400,
				CSSteps:     1,
				NCSMaxSteps: 50,
				Runs:        1,
			})
			var total uint64
			for _, v := range res.PerThread {
				total += v
			}
			if total != 5*400 {
				t.Fatalf("ops = %d, want %d", total, 5*400)
			}
		})
	}
}
