// Root benchmark suite: one bench family per table/figure of the
// paper's evaluation, plus the ablation benches called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem .
//
// Simulator-backed benches report their scientific quantity via
// b.ReportMetric (events/episode, episodes/kcycle); real-execution
// benches report ns/op. See EXPERIMENTS.md for the paper-vs-measured
// discussion.
package repro_test

import (
	"runtime"
	"sync"
	"testing"

	"repro"
	"repro/internal/atomicstruct"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/lockstat"
	"repro/internal/mutexbench"
	"repro/internal/registry"
	"repro/internal/simlocks"
	"repro/internal/waiter"
)

// contend runs b.N critical sections spread across g goroutines over
// one lock, with an occasional in-CS yield so that queues actually
// form on a single-processor scheduler.
func contend(b *testing.B, l sync.Locker, g int) {
	b.Helper()
	var wg sync.WaitGroup
	per := b.N / g
	if per == 0 {
		per = 1
	}
	b.ResetTimer()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Lock()
				if i&63 == 0 {
					runtime.Gosched()
				}
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

// BenchmarkUncontended is Figure 1's T=1 point: single-thread
// acquire+release latency for every lock in the repository.
func BenchmarkUncontended(b *testing.B) {
	for _, lf := range registry.All() {
		lf := lf
		b.Run(lf.Name, func(b *testing.B) {
			l := lf.New()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

// BenchmarkFig1aMaxContention: §7.1 maximal contention on real
// goroutines (empty critical and non-critical sections).
func BenchmarkFig1aMaxContention(b *testing.B) {
	for _, lf := range registry.Paper() {
		lf := lf
		for _, g := range []int{2, 4, 8} {
			g := g
			b.Run(lf.Name+"/g"+itoa(g), func(b *testing.B) {
				contend(b, lf.New(), g)
			})
		}
	}
}

// BenchmarkFig1bModerateContention: §7.1 with the private-PRNG
// non-critical section.
func BenchmarkFig1bModerateContention(b *testing.B) {
	for _, lf := range registry.Paper() {
		lf := lf
		b.Run(lf.Name, func(b *testing.B) {
			res := mutexbench.Run(lf, mutexbench.Config{
				Threads:     4,
				Iterations:  b.N/4 + 1,
				CSSteps:     1,
				NCSMaxSteps: 250,
				Runs:        1,
			})
			b.ReportMetric(res.Mops, "Mops")
		})
	}
}

// BenchmarkFig1Sim: the Track B modeled-throughput curves behind
// Figures 1a–1d; episodes/kcycle is the scientific metric.
func BenchmarkFig1Sim(b *testing.B) {
	for _, name := range simlocks.Names() {
		name := name
		for _, threads := range []int{8, 32} {
			threads := threads
			b.Run(name+"/T"+itoa(threads), func(b *testing.B) {
				var tp float64
				for i := 0; i < b.N; i++ {
					out := simlocks.Run(simlocks.ByName(name), simlocks.Config{
						Threads:  threads,
						Episodes: 100,
						Mode:     coherence.Timed,
						CSShared: true,
						CSWork:   10,
						NodeCPUs: 18,
						Seed:     1,
					})
					tp = out.Throughput
				}
				b.ReportMetric(tp, "episodes/kcycle")
			})
		}
	}
}

// BenchmarkTable1Invalidations: coherence events per episode under
// sustained contention (Table 1's invalidation column).
func BenchmarkTable1Invalidations(b *testing.B) {
	for _, name := range simlocks.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var ev float64
			for i := 0; i < b.N; i++ {
				out := simlocks.Run(simlocks.ByName(name), simlocks.Config{
					Threads:  10,
					Episodes: 200,
					Warmup:   40,
					Mode:     coherence.RoundRobin,
					CSWork:   5,
					Seed:     1,
				})
				ev = out.EventsPerEpisode
			}
			b.ReportMetric(ev, "events/episode")
		})
	}
}

// BenchmarkFig2aExchange and BenchmarkFig2bCAS: §7.2's lock-striped
// atomic struct operations.
func BenchmarkFig2aExchange(b *testing.B) {
	for _, lf := range registry.Paper() {
		lf := lf
		b.Run(lf.Name, func(b *testing.B) {
			stripe := atomicstruct.NewStripe(64, lf.New)
			a := atomicstruct.New[atomicstruct.S](stripe)
			local := atomicstruct.S{A: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				local = a.Exchange(local)
			}
		})
	}
}

func BenchmarkFig2bCAS(b *testing.B) {
	for _, lf := range registry.Paper() {
		lf := lf
		b.Run(lf.Name, func(b *testing.B) {
			stripe := atomicstruct.NewStripe(64, lf.New)
			a := atomicstruct.New[atomicstruct.S](stripe)
			cur := a.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for {
					next := cur
					next.A++
					wit, ok := a.CompareExchange(cur, next)
					if ok {
						cur = next
						break
					}
					cur = wit
				}
			}
		})
	}
}

// BenchmarkFig3ReadRandom: §7.3's KV readrandom per lock algorithm.
func BenchmarkFig3ReadRandom(b *testing.B) {
	for _, lf := range registry.Paper() {
		lf := lf
		b.Run(lf.Name, func(b *testing.B) {
			db := kvstore.Open(kvstore.Options{Lock: lf.New(), MemTableBytes: 256 << 10})
			kvstore.FillSeq(db, 10_000, 100)
			b.ResetTimer()
			res := kvstore.ReadRandom(db, kvstore.ReadRandomConfig{
				Threads:      4,
				Keyspace:     10_000,
				OpsPerThread: b.N/4 + 1,
			})
			b.ReportMetric(res.Mops, "Mops")
		})
	}
}

// BenchmarkTable2Cycle: cost of the full Table 2 reproduction
// (simulated schedule + cycle analysis).
func BenchmarkTable2Cycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := simlocks.Run(simlocks.ByName("Recipro"), simlocks.Config{
			Threads:  5,
			Episodes: 100,
			Mode:     coherence.RoundRobin,
			Seed:     1,
		})
		if len(out.AdmissionSchedule) == 0 {
			b.Fatal("no schedule")
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationEOSPlacement: eos conveyed through wait elements
// (Listing 1) versus a sequestered lock-body word (Listing 2).
func BenchmarkAblationEOSPlacement(b *testing.B) {
	b.Run("eos-in-element", func(b *testing.B) { contend(b, new(core.Lock), 4) })
	b.Run("eos-in-lockbody", func(b *testing.B) { contend(b, new(core.SimplifiedLock), 4) })
}

// BenchmarkAblationPoliteCAS: conditioning the release CAS on a prior
// load (§4: the paper found no observable benefit).
func BenchmarkAblationPoliteCAS(b *testing.B) {
	b.Run("raw-cas", func(b *testing.B) { contend(b, new(core.Lock), 4) })
	b.Run("polite-cas", func(b *testing.B) { contend(b, &core.Lock{PoliteRelease: true}, 4) })
}

// BenchmarkAblationDoubleSwap: single-swap arrival with eos
// conveyance (Listing 1) versus double-swap arrival (Listings 3/6) on
// the uncontended path, where the second swap is the cost.
func BenchmarkAblationDoubleSwap(b *testing.B) {
	b.Run("single-swap", func(b *testing.B) {
		l := new(core.Lock)
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
	b.Run("double-swap-relay", func(b *testing.B) {
		l := new(core.RelayLock)
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
	b.Run("double-swap-combined", func(b *testing.B) {
		l := new(core.CombinedLock)
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
}

// BenchmarkAblationWaitPolicy: spin vs yield vs adaptive waiting under
// contention (GOMAXPROCS matters; see EXPERIMENTS.md).
func BenchmarkAblationWaitPolicy(b *testing.B) {
	policies := []struct {
		name string
		p    waiter.Policy
	}{
		{"adaptive", waiter.PolicyAdaptive},
		{"spin", waiter.PolicySpin},
		{"yield", waiter.PolicyYield},
		{"backoff(dead-time)", waiter.PolicyBackoff},
	}
	for _, pol := range policies {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			contend(b, &core.Lock{Policy: pol.p}, 4)
		})
	}
}

// BenchmarkAblationHandleReuse: the pool-backed Lock/Unlock interface
// versus the allocation-free explicit wait-element API.
func BenchmarkAblationHandleReuse(b *testing.B) {
	b.Run("pool", func(b *testing.B) {
		l := new(core.Lock)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Lock()
			l.Unlock()
		}
	})
	b.Run("explicit-element", func(b *testing.B) {
		l := new(core.Lock)
		e := new(core.WaitElement)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok := l.Acquire(e)
			l.Release(tok)
		}
	})
}

// BenchmarkAblationPadding: two independent hot locks adjacent in
// memory (sharing cache sectors) versus sector-padded — the false-
// sharing cost the paper's 128-byte sequestration avoids.
func BenchmarkAblationPadding(b *testing.B) {
	run := func(b *testing.B, l0, l1 sync.Locker) {
		var wg sync.WaitGroup
		per := b.N/2 + 1
		b.ResetTimer()
		for w := 0; w < 2; w++ {
			l := l0
			if w == 1 {
				l = l1
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					l.Lock()
					l.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	b.Run("adjacent", func(b *testing.B) {
		var pair [2]core.Lock // lock words share a sector
		run(b, &pair[0], &pair[1])
	})
	b.Run("sequestered", func(b *testing.B) {
		type padded struct {
			l core.Lock
			_ [128]byte
		}
		var pair [2]padded
		run(b, &pair[0].l, &pair[1].l)
	})
}

// BenchmarkVariants: uncontended cost of every Reciprocating variant,
// side by side.
func BenchmarkVariants(b *testing.B) {
	variants := []struct {
		name string
		mk   func() sync.Locker
	}{
		{"Listing1", func() sync.Locker { return new(repro.Lock) }},
		{"Listing2", func() sync.Locker { return new(repro.SimplifiedLock) }},
		{"Listing3", func() sync.Locker { return new(repro.RelayLock) }},
		{"Listing4", func() sync.Locker { return new(repro.FetchAddLock) }},
		{"Listing5", func() sync.Locker { return new(repro.SimplifiedEOSLock) }},
		{"Listing6", func() sync.Locker { return new(repro.CombinedLock) }},
		{"Gated", func() sync.Locker { return new(repro.GatedLock) }},
		{"TwoLane", func() sync.Locker { return new(repro.TwoLaneLock) }},
		{"Fair", func() sync.Locker { return new(repro.FairLock) }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			l := v.mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkLockstatOverhead is the telemetry guard: the same
// uncontended Reciprocating acquire/release, bare vs. wrapped with a
// nil-Stats Instrumented (must stay within 10% of bare — the wrapper
// is designed to be left on permanently) vs. fully enabled telemetry
// (the honest price of measuring). All three arms drive the lock
// through sync.Locker so dispatch cost is identical.
func BenchmarkLockstatOverhead(b *testing.B) {
	arms := []struct {
		name string
		mk   func() sync.Locker
	}{
		{"bare", func() sync.Locker { return new(core.Lock) }},
		{"nil-stats", func() sync.Locker { return lockstat.Wrap(new(core.Lock), nil) }},
		{"enabled", func() sync.Locker { return lockstat.Wrap(new(core.Lock), lockstat.New()) }},
	}
	for _, arm := range arms {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			l := arm.mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}
