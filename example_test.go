package repro_test

import (
	"fmt"
	"sync"

	"repro"
)

// The zero value is ready: Reciprocating Locks need no constructors or
// destructors, so they can be embedded, copied-before-use, and
// abandoned freely.
func ExampleLock() {
	var mu repro.Lock
	var wg sync.WaitGroup
	counter := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 8000
}

// The explicit API is allocation-free: one WaitElement per worker
// serves any number of locks, because a worker waits on at most one
// lock at a time (§2).
func ExampleLock_acquire() {
	var a, b repro.Lock
	e := new(repro.WaitElement)

	tok := a.Acquire(e)
	// ... critical section under a ...
	a.Release(tok)

	tok = b.Acquire(e) // same element, different lock
	// ... critical section under b ...
	b.Release(tok)

	fmt.Println(a.Locked(), b.Locked())
	// Output: false false
}

// TryLock never waits.
func ExampleLock_tryLock() {
	var mu repro.Lock
	fmt.Println(mu.TryLock()) // free: succeeds
	fmt.Println(mu.TryLock()) // held: fails
	mu.Unlock()
	// Output:
	// true
	// false
}

// FairLock adds the §9.4 Bernoulli deferral that breaks palindromic
// admission cycles; DeferProb tunes fairness against throughput.
func ExampleFairLock() {
	l := &repro.FairLock{DeferProb: 32} // 32/256 = 1/8 deferral rate
	l.Lock()
	l.Unlock()
	fmt.Println(l.Deferrals()) // uncontended episodes never defer
	// Output: 0
}

// All variants are drop-in sync.Locker implementations.
func ExampleSimplifiedLock() {
	locks := []sync.Locker{
		new(repro.SimplifiedLock), // Listing 2
		new(repro.RelayLock),      // Listing 3
		new(repro.FetchAddLock),   // Listing 4
		new(repro.CombinedLock),   // Listing 6
		new(repro.GatedLock),      // Appendix H
		new(repro.TwoLaneLock),    // Appendix I
	}
	for _, l := range locks {
		l.Lock()
		l.Unlock()
	}
	fmt.Println("all variants cycled")
	// Output: all variants cycled
}
