package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListScripts(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"lease-expiry-mid-cs", "thundering-herd", "asym-partition",
		"slow-node", "crash-during-handoff", "restart-storm"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestCleanRun(t *testing.T) {
	code, out, errOut := runCLI(t, "-nodes=3", "-shards=2", "-seed=5", "-duration=600ms", "-heal=1500ms")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	for _, want := range []string{"clustersim: OK", "grants", "repro: clustersim -nodes=3 -shards=2 -seed=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCanonicalScriptByName(t *testing.T) {
	code, out, errOut := runCLI(t, "-script=lease-expiry-mid-cs", "-seed=2")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	if !strings.Contains(out, "-script=lease-expiry-mid-cs") {
		t.Errorf("repro line missing the script:\n%s", out)
	}
}

func TestScriptFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.script")
	if err := os.WriteFile(path, []byte("at 100ms crash n1\nat 300ms restart n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-nodes=3", "-shards=2", "-duration=600ms", "-heal=1500ms", "-script="+path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
}

func TestBadScriptArg(t *testing.T) {
	code, _, errOut := runCLI(t, "-script=definitely-not-a-script")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "neither a canonical script nor a readable file") {
		t.Errorf("unhelpful error: %s", errOut)
	}
}

// A violating run must exit 1 and print the failure report with the
// one-command repro. -no-fencing against the expiry gauntlet is the
// reliable trigger (see the cluster package's negative test); scan a
// few seeds since not every seed builds stale pressure.
func TestViolationExitsOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "expiry.script")
	script := "at 100ms pause n0 for 300ms\nat 120ms expire shard 0\n" +
		"at 500ms pause n1 for 300ms\nat 520ms expire shard 0\n" +
		"at 900ms pause n2 for 300ms\nat 920ms expire shard 0\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	for seed := 1; seed <= 20; seed++ {
		code, _, errOut := runCLI(t, "-nodes=3", "-shards=1", "-no-fencing",
			"-duration=1300ms", "-heal=1500ms", "-script="+path,
			"-seed="+strconv.Itoa(seed))
		if code == 0 {
			continue
		}
		if code != 1 {
			t.Fatalf("seed %d: exit %d\n%s", seed, code, errOut)
		}
		for _, want := range []string{"invariant violation", "repro: clustersim", "-no-fencing", "trace (last"} {
			if !strings.Contains(errOut, want) {
				t.Fatalf("failure report missing %q:\n%s", want, errOut)
			}
		}
		return
	}
	t.Fatal("no seed in 1..20 tripped a violation with fencing disabled")
}
