package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListScripts(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"lease-expiry-mid-cs", "thundering-herd", "asym-partition",
		"slow-node", "crash-during-handoff", "restart-storm"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestCleanRun(t *testing.T) {
	code, out, errOut := runCLI(t, "-nodes=3", "-shards=2", "-seed=5", "-duration=600ms", "-heal=1500ms")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	for _, want := range []string{"clustersim: OK", "grants", "repro: clustersim -nodes=3 -shards=2 -seed=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCanonicalScriptByName(t *testing.T) {
	code, out, errOut := runCLI(t, "-script=lease-expiry-mid-cs", "-seed=2")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	if !strings.Contains(out, "-script=lease-expiry-mid-cs") {
		t.Errorf("repro line missing the script:\n%s", out)
	}
}

func TestScriptFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.script")
	if err := os.WriteFile(path, []byte("at 100ms crash n1\nat 300ms restart n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-nodes=3", "-shards=2", "-duration=600ms", "-heal=1500ms", "-script="+path)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
}

func TestBadScriptArg(t *testing.T) {
	code, _, errOut := runCLI(t, "-script=definitely-not-a-script")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "neither a canonical script nor a readable file") {
		t.Errorf("unhelpful error: %s", errOut)
	}
}

// A violating run must exit 1 and print the failure report with the
// one-command repro. -no-fencing against the expiry gauntlet is the
// reliable trigger (see the cluster package's negative test); scan a
// few seeds since not every seed builds stale pressure.
func TestViolationExitsOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "expiry.script")
	script := "at 100ms pause n0 for 300ms\nat 120ms expire shard 0\n" +
		"at 500ms pause n1 for 300ms\nat 520ms expire shard 0\n" +
		"at 900ms pause n2 for 300ms\nat 920ms expire shard 0\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	for seed := 1; seed <= 20; seed++ {
		code, _, errOut := runCLI(t, "-nodes=3", "-shards=1", "-no-fencing",
			"-duration=1300ms", "-heal=1500ms", "-script="+path,
			"-seed="+strconv.Itoa(seed))
		if code == 0 {
			continue
		}
		if code != 1 {
			t.Fatalf("seed %d: exit %d\n%s", seed, code, errOut)
		}
		for _, want := range []string{"invariant violation", "repro: clustersim", "-no-fencing", "trace (last"} {
			if !strings.Contains(errOut, want) {
				t.Fatalf("failure report missing %q:\n%s", want, errOut)
			}
		}
		return
	}
	t.Fatal("no seed in 1..20 tripped a violation with fencing disabled")
}

// TestPresetRun pins -preset: topology and timing come from the named
// preset, and the repro line carries -preset instead of -nodes/-shards.
func TestPresetRun(t *testing.T) {
	code, out, errOut := runCLI(t, "-preset=explore-small", "-seed=2")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	if !strings.Contains(out, "nodes=2 shards=1") {
		t.Errorf("preset topology not applied:\n%s", out)
	}
	if !strings.Contains(out, "repro: clustersim -preset=explore-small -seed=2") ||
		strings.Contains(out, "-nodes=") {
		t.Errorf("repro line should carry the preset, not raw topology:\n%s", out)
	}

	if code, _, _ := runCLI(t, "-preset=nope"); code != 2 {
		t.Error("unknown preset should exit 2")
	}
}

// TestPresetFlagOverride pins the override rule: an explicitly-set
// flag beats the preset field it shadows.
func TestPresetFlagOverride(t *testing.T) {
	code, out, errOut := runCLI(t, "-preset=explore-small", "-nodes=3", "-seed=2")
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	if !strings.Contains(out, "nodes=3 shards=1") {
		t.Errorf("-nodes should override the preset:\n%s", out)
	}
}

// TestScheduleFlag pins -schedule: a fixed branch-choice schedule from
// clusterexplore replays here, and a violating one exits 1 with the
// schedule preserved in the repro line.
func TestScheduleFlag(t *testing.T) {
	code, out, errOut := runCLI(t, "-preset=explore-small", "-seed=1", "-schedule=0,0")
	if code != 0 {
		t.Fatalf("clean schedule replay: exit %d\n%s", code, errOut)
	}
	if !strings.Contains(out, "-schedule=0,0") {
		t.Errorf("repro line should carry the schedule:\n%s", out)
	}
	if code, _, _ := runCLI(t, "-preset=explore-small", "-schedule=1,bad"); code != 2 {
		t.Error("malformed -schedule should exit 2")
	}

	// The break-dedup mutation is clean in canonical order but fails on
	// the reordered schedule clusterexplore finds — the exact pair a
	// shrunk repro file's header encodes.
	sched := "0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,1"
	code, _, errOut = runCLI(t, "-preset=explore-small", "-seed=1",
		"-script=expire-churn-tiny", "-window=1ms", "-break-dedup", "-schedule="+sched)
	if code != 1 {
		t.Fatalf("violating schedule replay: exit %d\n%s", code, errOut)
	}
	for _, want := range []string{"version-regress", "-break-dedup", "-schedule=" + sched} {
		if !strings.Contains(errOut, want) {
			t.Errorf("failure report missing %q:\n%s", want, errOut)
		}
	}
	// Same run in canonical order is clean: the violation needs the
	// reordering, which is why searching matters.
	code, _, errOut = runCLI(t, "-preset=explore-small", "-seed=1",
		"-script=expire-churn-tiny", "-window=1ms", "-break-dedup")
	if code != 0 {
		t.Fatalf("canonical break-dedup run should pass: exit %d\n%s", code, errOut)
	}
}

// TestSkipReconcileFlag pins the third mutation flag end to end.
func TestSkipReconcileFlag(t *testing.T) {
	code, _, errOut := runCLI(t, "-preset=explore-small", "-seed=1",
		"-script=expire-churn-tiny", "-skip-reconcile")
	if code != 1 {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "reconcile") || !strings.Contains(errOut, "-skip-reconcile") {
		t.Errorf("failure report:\n%s", errOut)
	}
}
