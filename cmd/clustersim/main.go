// Command clustersim runs the deterministic cluster simulation: N
// kvstore replicas coordinated by a lease-based lock service with
// fencing tokens, under a scripted, seed-replayable fault schedule.
//
// Usage:
//
//	clustersim -list
//	clustersim [-nodes=5] [-shards=4] [-seed=1] [-script=NAME|FILE]
//	           [-duration=1.5s] [-heal=2s] [-no-fencing] [-trace] [-quiet]
//	clustersim -preset=explore-small [-schedule=0,0,1] [-window=1ms]
//	           [-break-dedup] [-skip-reconcile] ...
//
// -script accepts a canonical script name (see -list) or a path to a
// fault-script file. On an invariant violation the process exits 1
// after printing a failure report that includes the seed, the script,
// and the trace suffix — the printed repro line replays the run
// exactly.
//
// -preset starts from a named topology/timing preset (the same ones
// cmd/clusterexplore searches over); explicitly-set flags still
// override individual preset fields. -schedule replays a fixed
// branch-choice schedule found by clusterexplore, which is how a
// shrunk repro file's header is replayed here.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/explore"
)

type options struct {
	nodes, shards int
	seed          uint64
	script        string
	duration      time.Duration
	heal          time.Duration
	preset        string
	window        time.Duration
	schedule      string
	realLock      string
	noFencing     bool
	breakDedup    bool
	skipReconcile bool
	trace         bool
	quiet         bool
	list          bool

	set map[string]bool // flags explicitly present on the command line
}

func parseFlags(args []string, errOut io.Writer) (*options, error) {
	fs := flag.NewFlagSet("clustersim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := &options{}
	fs.IntVar(&o.nodes, "nodes", 5, "replica count")
	fs.IntVar(&o.shards, "shards", 4, "shards per replica")
	fs.Uint64Var(&o.seed, "seed", 1, "PRNG seed; same seed+script replays byte-identically")
	fs.StringVar(&o.script, "script", "", "fault script: canonical name (see -list) or file path")
	fs.DurationVar(&o.duration, "duration", 0, "workload horizon (0 = default 1.5s)")
	fs.DurationVar(&o.heal, "heal", 0, "post-heal drain window (0 = default 2s)")
	fs.StringVar(&o.preset, "preset", "", "start from a named preset (see clusterexplore -list); other flags override")
	fs.DurationVar(&o.window, "window", 0, "schedule window for co-ready events (0 = preset/default)")
	fs.StringVar(&o.schedule, "schedule", "", "fixed branch-choice schedule from clusterexplore (e.g. 0,0,1)")
	fs.StringVar(&o.realLock, "real-lock", "", "back every shard lease with a real registry-built lock of this name (preset real-lock-small sets Recipro)")
	fs.BoolVar(&o.noFencing, "no-fencing", false, "disable the replica fencing gate (negative testing)")
	fs.BoolVar(&o.breakDedup, "break-dedup", false, "disable replica write dedup (negative testing)")
	fs.BoolVar(&o.skipReconcile, "skip-reconcile", false, "drop the post-heal reconcile pass (negative testing)")
	fs.BoolVar(&o.trace, "trace", false, "print the full event trace")
	fs.BoolVar(&o.quiet, "quiet", false, "print only violations")
	fs.BoolVar(&o.list, "list", false, "list canonical scripts and exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	o.set = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { o.set[f.Name] = true })
	return o, nil
}

// loadScript resolves -script: empty means no faults, a canonical name
// wins over a file, anything else is read from disk.
func loadScript(arg string) (*cluster.Script, error) {
	if arg == "" {
		return nil, nil
	}
	if s, err := cluster.LoadScript(arg); err == nil {
		return s, nil
	}
	text, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("-script %q is neither a canonical script nor a readable file: %w", arg, err)
	}
	return cluster.ParseScript(string(text))
}

// buildConfig assembles the run Config. With -preset, the preset
// supplies every field and explicitly-set flags override one at a
// time; without it, the classic flag set applies directly.
func (o *options) buildConfig() (cluster.Config, error) {
	var cfg cluster.Config
	if o.preset != "" {
		p, err := cluster.Preset(o.preset)
		if err != nil {
			return cluster.Config{}, err
		}
		cfg = p
		if o.set["nodes"] {
			cfg.Nodes = o.nodes
		}
		if o.set["shards"] {
			cfg.Shards = o.shards
		}
		if o.set["duration"] {
			cfg.Duration = o.duration
		}
		if o.set["heal"] {
			cfg.Heal = o.heal
		}
	} else {
		cfg = cluster.Config{
			Nodes: o.nodes, Shards: o.shards,
			Duration: o.duration, Heal: o.heal,
		}
	}
	cfg.Seed = o.seed
	if o.set["window"] && o.window > 0 {
		cfg.ScheduleWindow = o.window
	}
	if o.set["real-lock"] {
		cfg.RealLockName = o.realLock
	}
	cfg.DisableFencing = o.noFencing
	cfg.BreakDedup = o.breakDedup
	cfg.SkipReconcile = o.skipReconcile

	script, err := loadScript(o.script)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg.Script = script

	if o.set["schedule"] {
		sched, err := explore.ParseSchedule(o.schedule)
		if err != nil {
			return cluster.Config{}, err
		}
		cfg.Scheduler = explore.FixedSchedule(sched)
	}
	return cfg, nil
}

// reproLine renders the exact invocation that replays this run.
func reproLine(o *options) string {
	parts := []string{"clustersim"}
	if o.preset != "" {
		parts = append(parts, fmt.Sprintf("-preset=%s", o.preset))
	} else {
		parts = append(parts,
			fmt.Sprintf("-nodes=%d", o.nodes),
			fmt.Sprintf("-shards=%d", o.shards))
	}
	parts = append(parts, fmt.Sprintf("-seed=%d", o.seed))
	if o.script != "" {
		parts = append(parts, fmt.Sprintf("-script=%s", o.script))
	}
	if o.set["real-lock"] && o.realLock != "" {
		parts = append(parts, fmt.Sprintf("-real-lock=%s", o.realLock))
	}
	if o.set["duration"] && o.duration != 0 {
		parts = append(parts, fmt.Sprintf("-duration=%v", o.duration))
	}
	if o.set["heal"] && o.heal != 0 {
		parts = append(parts, fmt.Sprintf("-heal=%v", o.heal))
	}
	if o.set["window"] && o.window != 0 {
		parts = append(parts, fmt.Sprintf("-window=%v", o.window))
	}
	if o.noFencing {
		parts = append(parts, "-no-fencing")
	}
	if o.breakDedup {
		parts = append(parts, "-break-dedup")
	}
	if o.skipReconcile {
		parts = append(parts, "-skip-reconcile")
	}
	if o.set["schedule"] {
		parts = append(parts, fmt.Sprintf("-schedule=%s", o.schedule))
	}
	return strings.Join(parts, " ")
}

func listScripts(out io.Writer) {
	names := cluster.ScriptNames()
	sort.Strings(names)
	fmt.Fprintln(out, "canonical fault scripts:")
	for _, name := range names {
		s, err := cluster.LoadScript(name)
		if err != nil {
			fmt.Fprintf(out, "  %-24s <error: %v>\n", name, err)
			continue
		}
		fmt.Fprintf(out, "  %-24s %d steps\n", name, len(s.Steps))
	}
}

func run(args []string, out, errOut io.Writer) int {
	o, err := parseFlags(args, errOut)
	if err != nil {
		return 2
	}
	if o.list {
		listScripts(out)
		return 0
	}
	cfg, err := o.buildConfig()
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return 2
	}

	if o.trace {
		for _, line := range res.Trace {
			fmt.Fprintln(out, line)
		}
	}
	if len(res.Violations) > 0 {
		fmt.Fprint(errOut, res.FailureReport(reproLine(o)))
		return 1
	}
	if !o.quiet {
		printSummary(out, o, res)
	}
	return 0
}

func printSummary(out io.Writer, o *options, res *cluster.Result) {
	scriptName := o.script
	if scriptName == "" {
		scriptName = "<none>"
	}
	c := res.Counters
	fmt.Fprintf(out, "clustersim: OK  nodes=%d shards=%d seed=%d script=%s\n",
		res.Config.Nodes, res.Config.Shards, o.seed, scriptName)
	fmt.Fprintf(out, "  simulated %v in %d events; all invariants held\n", res.End, res.Events)
	fmt.Fprintf(out, "  leases: %d grants, %d denies\n", c.Grants, c.Denies)
	fmt.Fprintf(out, "  writes: %d issued, %d committed, %d stale-fenced at replicas, %d fenced at origin\n",
		c.Writes, c.Committed, c.StaleRejected, c.FencedWrites)
	fmt.Fprintf(out, "  network: %d sent, %d dropped, %d duplicated, %d retransmits\n",
		c.Sent, c.Dropped, c.Duplicated, c.Retransmits)
	fmt.Fprintf(out, "  repair: %d sync diffs, %d writes lost to crashes\n", c.SyncDiffs, c.LostWrites)
	fmt.Fprintf(out, "  repro: %s\n", reproLine(o))
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
