// Command figures regenerates every table and figure from the paper's
// evaluation in one shot, writing one text file per experiment into
// -out (default ./results). This is the single entry point behind
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	outDir := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "shrink Track A durations for a fast smoke pass")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	dur := 300 * time.Millisecond
	runs := 3
	keys := 50_000
	if *quick {
		dur = 20 * time.Millisecond
		runs = 1
		keys = 5_000
	}

	write := func(name, note string, tables ...*table.Table) {
		path := filepath.Join(*outDir, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if note != "" {
			fmt.Fprintln(f, note)
			fmt.Fprintln(f)
		}
		for i, t := range tables {
			if i > 0 {
				fmt.Fprintln(f)
			}
			t.Render(f)
		}
		f.Close()
		fmt.Println("wrote", path)
	}

	// Table 1: static properties + simulated dynamic columns.
	write("table1.txt", experiments.Table1Notes,
		experiments.Table1Properties(),
		experiments.Table1Invalidations(0, 0),
		experiments.Table1RemoteMisses(0, 0))

	// Figure 1: simulator shape curves (both architectures, both
	// contention levels) plus the real-execution Track A sweep.
	write("fig1_sim_intel.txt", "",
		experiments.Fig1Sim(experiments.ArchIntel, false, 0),
		experiments.Fig1Sim(experiments.ArchIntel, true, 0))
	write("fig1_sim_arm.txt", "",
		experiments.Fig1Sim(experiments.ArchARM, false, 0),
		experiments.Fig1Sim(experiments.ArchARM, true, 0))
	write("fig1_real.txt", experiments.TrackANote,
		experiments.Fig1Real(false, dur, runs),
		experiments.Fig1Real(true, dur, runs))

	// Figure 2: lock-striped atomic struct.
	write("fig2.txt", experiments.TrackANote,
		experiments.Fig2(false, dur, runs),
		experiments.Fig2(true, dur, runs))

	// Figure 3: KV readrandom.
	write("fig3.txt", experiments.TrackANote,
		experiments.Fig3(dur, keys, runs))

	// Table 2 + §9 fairness + Appendix C + Appendix G.
	_, t2 := experiments.Table2(0, 0)
	write("table2.txt", "", t2)
	write("fairness.txt", experiments.TrackANote,
		experiments.LongTermFairnessSim(0, 0),
		experiments.MitigationFairness(dur))
	write("llc_model.txt", "", experiments.LLCResidency(0))
	write("latency.txt", "", experiments.AcquireLatencyDistribution(0, 0))
	write("bypass.txt", experiments.TrackANote, experiments.BypassBound(0, 0))
	write("padding.txt", "", experiments.PaddingAblationSim(0, 0))
	write("section8_tally.txt", "", experiments.Section8Tally(0, 0))
	write("tradeoff.txt", "", experiments.FairnessThroughputTradeoff(0, 0))
	write("segments.txt", "", experiments.SegmentScaling(0))
	write("retrograde.txt", "", experiments.RetrogradeEquivalence(0))

	// Uncontended latency (Figure 1 at T=1).
	iters := 2_000_000
	if *quick {
		iters = 50_000
	}
	write("uncontended.txt", experiments.TrackANote,
		experiments.UncontendedLatency(iters))
}
