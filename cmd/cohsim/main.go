// Command cohsim runs the Track B coherence-simulator experiments:
// the Table 1 invalidation and remote-miss columns and the Figure 1
// modeled-throughput curves.
//
// Usage:
//
//	cohsim -mode=table1 [-threads=10]
//	cohsim -mode=remote [-threads=8]
//	cohsim -mode=fig1 [-arch=intel|arm] [-contention=max|moderate]
//	cohsim -mode=table2 [-threads=5]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	mode := flag.String("mode", "table1", "experiment: table1, remote, fig1, table2, padding, tally, segments")
	arch := flag.String("arch", "intel", "modeled machine for fig1: intel or arm")
	contention := flag.String("contention", "max", "fig1 contention: max or moderate")
	threads := flag.Int("threads", 0, "thread count (table1/remote/table2; 0 = paper default)")
	episodes := flag.Int("episodes", 0, "episodes per thread (0 = default)")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	emit := func(t *table.Table) {
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}

	switch *mode {
	case "table1":
		emit(experiments.Table1Invalidations(*threads, *episodes))
	case "remote":
		emit(experiments.Table1RemoteMisses(*threads, *episodes))
	case "fig1":
		a, ok := experiments.ArchByName(*arch)
		if !ok {
			fmt.Fprintln(os.Stderr, "unknown -arch; want intel or arm")
			os.Exit(2)
		}
		emit(experiments.Fig1Sim(a, *contention == "moderate", *episodes))
	case "table2":
		res, t := experiments.Table2(*threads, *episodes)
		emit(t)
		fmt.Printf("\nsteady-state cycle: %v\n", res.Cycle)
	case "padding":
		emit(experiments.PaddingAblationSim(*threads, *episodes))
	case "tally":
		emit(experiments.Section8Tally(*threads, *episodes))
	case "segments":
		emit(experiments.SegmentScaling(*episodes))
	default:
		fmt.Fprintln(os.Stderr, "unknown -mode; want table1, remote, fig1, table2, padding, tally, or segments")
		os.Exit(2)
	}
}
