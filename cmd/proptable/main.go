// Command proptable prints the full Table 1 reproduction: the static
// property matrix (§6) plus the dynamic columns measured on the
// coherence simulator (coherence events and NUMA remote misses per
// episode).
package main

import (
	"flag"
	"fmt"
	"os"
)

import "repro/internal/experiments"

func main() {
	threads := flag.Int("threads", 10, "simulated threads for the dynamic columns")
	flag.Parse()

	experiments.Table1Properties().Render(os.Stdout)
	fmt.Println()
	fmt.Println(experiments.Table1Notes)
	fmt.Println()
	experiments.Table1Invalidations(*threads, 0).Render(os.Stdout)
	fmt.Println()
	experiments.Table1RemoteMisses(0, 0).Render(os.Stdout)
}
