// Command atomicbench runs the §7.2 std::atomic<struct> benchmarks
// (Figures 2a and 2b): a shared 5×int32 struct made atomic through an
// address-hashed stripe of locks, hammered with exchange or
// compare-exchange loops.
//
// Usage:
//
//	atomicbench -mode=exchange|cas [-duration=200ms] [-runs=3]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	mode := flag.String("mode", "exchange", "operation: exchange (Fig 2a) or cas (Fig 2b)")
	duration := flag.Duration("duration", 0, "measurement interval per configuration")
	runs := flag.Int("runs", 3, "runs per configuration (median reported)")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	var cas bool
	switch *mode {
	case "exchange":
	case "cas":
		cas = true
	default:
		fmt.Fprintln(os.Stderr, "unknown -mode; want exchange or cas")
		os.Exit(2)
	}
	fmt.Println(experiments.TrackANote)
	t := experiments.Fig2(cas, *duration, *runs)
	if *csv {
		t.RenderCSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
}
