// Command atomicbench runs the §7.2 std::atomic<struct> benchmarks
// (Figures 2a and 2b): a shared 5×int32 struct made atomic through an
// address-hashed stripe of locks, hammered with exchange or
// compare-exchange loops.
//
// Usage:
//
//	atomicbench -mode=exchange|cas [-locks=paper|all|...|list]
//	            [-duration=200ms] [-runs=3] [-json] [-out=file]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/registry"
)

func main() {
	mode := flag.String("mode", "exchange", "operation: exchange (Fig 2a) or cas (Fig 2b)")
	locksF := registry.NewLocksFlag("paper")
	flag.Var(locksF, "locks", registry.FlagUsage)
	bf := harness.Register(flag.CommandLine, harness.Spec{
		Runs:      3,
		NoThreads: true, // the Figure 2 sweep is fixed
		NoSeed:    true,
	})
	flag.Parse()

	lfs, listed, err := locksF.Resolve(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if listed {
		return
	}

	var cas bool
	switch *mode {
	case "exchange":
	case "cas":
		cas = true
	default:
		fmt.Fprintln(os.Stderr, "unknown -mode; want exchange or cas")
		os.Exit(2)
	}

	res := experiments.Fig2Results(lfs, cas, bf.Duration, bf.Runs)

	out, closeOut, err := bf.OutputFile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeOut()

	if bf.JSON {
		if err := res.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	op := "exchange"
	if cas {
		op = "compare_exchange_strong"
	}
	fmt.Fprintln(out, experiments.TrackANote)
	t := harness.MatrixTable(res,
		fmt.Sprintf("Figure 2 (%s) — std::atomic<S> ops Mops/s (median of %d)", op, bf.Runs))
	if bf.CSV {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}
}
