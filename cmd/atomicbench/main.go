// Command atomicbench runs the §7.2 std::atomic<struct> benchmarks
// (Figures 2a and 2b): a shared 5×int32 struct made atomic through an
// address-hashed stripe of locks, hammered with exchange or
// compare-exchange loops.
//
// Usage:
//
//	atomicbench -mode=exchange|cas [-locks=paper|all|...|list]
//	            [-duration=200ms] [-runs=3]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/registry"
)

func main() {
	mode := flag.String("mode", "exchange", "operation: exchange (Fig 2a) or cas (Fig 2b)")
	locksF := registry.NewLocksFlag("paper")
	flag.Var(locksF, "locks", registry.FlagUsage)
	duration := flag.Duration("duration", 0, "measurement interval per configuration")
	runs := flag.Int("runs", 3, "runs per configuration (median reported)")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	lfs, listed, err := locksF.Resolve(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if listed {
		return
	}

	var cas bool
	switch *mode {
	case "exchange":
	case "cas":
		cas = true
	default:
		fmt.Fprintln(os.Stderr, "unknown -mode; want exchange or cas")
		os.Exit(2)
	}
	fmt.Println(experiments.TrackANote)
	t := experiments.Fig2Locks(lfs, cas, *duration, *runs)
	if *csv {
		t.RenderCSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
}
