// Command fairness runs the §9 / Appendix C experiments: the Table 2
// palindromic admission schedule, long-term admission fairness, the
// §9.4 Bernoulli-deferral mitigation, the Appendix C LLC residency
// model, and the Appendix G retrograde-equivalence check.
//
// Usage:
//
//	fairness -mode=table2|longterm|mitigate|llc|bypass|tradeoff|latency|retrograde|all
//	         [-duration=400ms] [-runs=1] [-json] [-out=file]
//
// -json emits the versioned harness Result schema and requires a
// single -mode (a result file is one harness invocation).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
)

func main() {
	mode := flag.String("mode", "all", "experiment: table2, longterm, mitigate, llc, bypass, tradeoff, latency, retrograde, all")
	bf := harness.Register(flag.CommandLine, harness.Spec{
		Duration:  400 * time.Millisecond,
		Runs:      1,
		NoThreads: true, // each experiment fixes its own thread counts
		NoSeed:    true, // simulator runs are seeded deterministically
	})
	flag.Parse()

	results := map[string]func() *harness.Result{
		"table2":     func() *harness.Result { return experiments.Table2Report(0, 0) },
		"longterm":   func() *harness.Result { return experiments.LongTermFairnessResult(0, 0) },
		"mitigate":   func() *harness.Result { return experiments.MitigationFairnessResult(bf.Duration, bf.Runs) },
		"llc":        func() *harness.Result { return experiments.LLCResidencyResult(0) },
		"bypass":     func() *harness.Result { return experiments.BypassBoundResult(0, 0) },
		"tradeoff":   func() *harness.Result { return experiments.TradeoffResult(0, 0) },
		"latency":    func() *harness.Result { return experiments.AcquireLatencyResult(0, 0) },
		"retrograde": func() *harness.Result { return experiments.RetrogradeResult(0) },
	}

	out, closeOut, err := bf.OutputFile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeOut()

	if bf.JSON {
		mk, ok := results[*mode]
		if !ok {
			fmt.Fprintln(os.Stderr, "-json needs a single -mode (one result file is one harness invocation)")
			os.Exit(2)
		}
		if err := mk().WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	run := func(m string) bool { return *mode == m || *mode == "all" }
	any := false
	if run("table2") {
		res, t := experiments.Table2(0, 0)
		t.Render(out)
		fmt.Fprintf(out, "\nsteady-state cycle: %v\n\n", res.Cycle)
		any = true
	}
	if run("longterm") {
		experiments.LongTermFairnessSim(0, 0).Render(out)
		fmt.Fprintln(out)
		any = true
	}
	if run("mitigate") {
		fmt.Fprintln(out, experiments.TrackANote)
		experiments.MitigationFairness(bf.Duration).Render(out)
		fmt.Fprintln(out)
		any = true
	}
	if run("llc") {
		experiments.LLCResidency(0).Render(out)
		fmt.Fprintln(out)
		any = true
	}
	if run("bypass") {
		fmt.Fprintln(out, experiments.TrackANote)
		experiments.BypassBound(0, 0).Render(out)
		fmt.Fprintln(out)
		any = true
	}
	if run("tradeoff") {
		experiments.FairnessThroughputTradeoff(0, 0).Render(out)
		fmt.Fprintln(out)
		any = true
	}
	if run("latency") {
		experiments.AcquireLatencyDistribution(0, 0).Render(out)
		fmt.Fprintln(out)
		any = true
	}
	if run("retrograde") {
		experiments.RetrogradeEquivalence(0).Render(out)
		any = true
	}
	if !any {
		fmt.Fprintln(os.Stderr, "unknown -mode")
		os.Exit(2)
	}
}
