// Command fairness runs the §9 / Appendix C experiments: the Table 2
// palindromic admission schedule, long-term admission fairness, the
// §9.4 Bernoulli-deferral mitigation, the Appendix C LLC residency
// model, and the Appendix G retrograde-equivalence check.
//
// Usage:
//
//	fairness -mode=table2|longterm|mitigate|llc|retrograde|all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	mode := flag.String("mode", "all", "experiment: table2, longterm, mitigate, llc, bypass, tradeoff, latency, retrograde, all")
	duration := flag.Duration("duration", 400*time.Millisecond, "Track A measurement interval (mitigate)")
	flag.Parse()

	run := func(m string) bool { return *mode == m || *mode == "all" }
	any := false
	if run("table2") {
		res, t := experiments.Table2(0, 0)
		t.Render(os.Stdout)
		fmt.Printf("\nsteady-state cycle: %v\n\n", res.Cycle)
		any = true
	}
	if run("longterm") {
		experiments.LongTermFairnessSim(0, 0).Render(os.Stdout)
		fmt.Println()
		any = true
	}
	if run("mitigate") {
		fmt.Println(experiments.TrackANote)
		experiments.MitigationFairness(*duration).Render(os.Stdout)
		fmt.Println()
		any = true
	}
	if run("llc") {
		experiments.LLCResidency(0).Render(os.Stdout)
		fmt.Println()
		any = true
	}
	if run("bypass") {
		fmt.Println(experiments.TrackANote)
		experiments.BypassBound(0, 0).Render(os.Stdout)
		fmt.Println()
		any = true
	}
	if run("tradeoff") {
		experiments.FairnessThroughputTradeoff(0, 0).Render(os.Stdout)
		fmt.Println()
		any = true
	}
	if run("latency") {
		experiments.AcquireLatencyDistribution(0, 0).Render(os.Stdout)
		fmt.Println()
		any = true
	}
	if run("retrograde") {
		experiments.RetrogradeEquivalence(0).Render(os.Stdout)
		any = true
	}
	if !any {
		fmt.Fprintln(os.Stderr, "unknown -mode")
		os.Exit(2)
	}
}
