// Command kvbench runs the §7.3 experiment (Figure 3) and its sharded
// extension: the readrandom and readwhilewriting workloads against the
// LSM-lite key-value store, whose guarding lock — the DBImpl::Mutex
// analog — is instantiated with each selected lock algorithm in turn.
// With -shards=1 (the default) the store is the paper's single coarse
// central mutex; larger counts hash-partition the keyspace across
// per-shard locks, making shard count × lock algorithm a full harness
// matrix. -mode=predict additionally runs the coarse-grained-locking
// prediction experiment: a model calibrated at T=1,S=1 versus measured
// throughput at every matrix point.
//
// Usage:
//
//	kvbench [-mode=readrandom|readwhilewriting|predict] [-read-frac=0.9]
//	        [-locks=paper|all|...|list] [-shards=1,4,16]
//	        [-keys=50000] [-duration=300ms] [-runs=3] [-threads=1,2,4]
//	        [-json] [-out=file] [-lockstat]
//
// In readrandom mode, -read-frac in (0,1) mixes Puts into the loop
// (each op is a Get with that probability), and cells are labeled
// kvreadmostly/rNN instead of readrandom — the store-level view of the
// harness read-fraction knob, exercising the shared Get path for locks
// that advertise CapReadShared.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/kvstore"
	"repro/internal/lockstat"
	"repro/internal/mutexbench"
	"repro/internal/registry"
	"repro/internal/table"
)

func main() {
	mode := flag.String("mode", "readrandom", "workload: readrandom (Figure 3), readwhilewriting, or predict (coarse-vs-sharded model)")
	readFrac := flag.Float64("read-frac", 0, "readrandom only: fraction of ops that are Gets, the rest Puts (0 = pure readrandom)")
	locksF := registry.NewLocksFlag("paper")
	flag.Var(locksF, "locks", registry.FlagUsage)
	keys := flag.Int("keys", 50_000, "keys preloaded by fillseq")
	shardsF := flag.String("shards", "1", "comma-separated shard counts (1 = the coarse central-mutex store)")
	bf := harness.Register(flag.CommandLine, harness.Spec{
		Runs:    3,
		Threads: "1,2,4,8,16,32",
	})
	lockstatOn := flag.Bool("lockstat", false, "instrument the store's lock(s) and attach per-lock telemetry to the report (sharded stores pool all shards into one snapshot)")
	flag.Parse()

	lfs, listed, err := locksF.Resolve(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if listed {
		return
	}
	if *mode != "readrandom" && *mode != "readwhilewriting" && *mode != "predict" {
		fmt.Fprintln(os.Stderr, "unknown -mode; want readrandom, readwhilewriting, or predict")
		os.Exit(2)
	}
	if *readFrac < 0 || *readFrac >= 1 {
		fmt.Fprintln(os.Stderr, "-read-frac must be in [0,1)")
		os.Exit(2)
	}
	if *readFrac > 0 && *mode != "readrandom" {
		fmt.Fprintln(os.Stderr, "-read-frac only applies to -mode=readrandom")
		os.Exit(2)
	}
	threads, err := bf.ThreadCounts()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shardCounts, err := harness.ParseThreads(*shardsF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-shards: %v\n", err)
		os.Exit(2)
	}
	d := bf.Duration
	if d <= 0 {
		d = 300 * time.Millisecond
	}

	out, closeOut, err := bf.OutputFile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeOut()

	if *mode == "predict" {
		res := experiments.ShardPredictionResult(lfs, shardCounts, threads, d, *keys, bf.Runs, bf.Seed)
		if bf.JSON {
			if err := res.WriteJSON(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			return
		}
		fmt.Fprintln(out, experiments.TrackANote)
		render(experiments.ShardPredictionTable(res), out, bf.CSV)
		return
	}

	res := harness.NewResult("kvbench", "A", bf.Seed)
	res.SetConfig("mode", *mode)
	res.SetConfig("keys", strconv.Itoa(*keys))
	res.SetConfig("shards", *shardsF)
	res.SetConfig("duration", d.String())
	res.SetConfig("runs", strconv.Itoa(bf.Runs))
	// The workload base: kvreadmostly/rNN cells are distinct both from
	// readrandom ones and from mutexbench's readmostly/rNN (merge keys
	// ignore the harness, so the store-level cells need their own name
	// to coexist in a merged baseline).
	base := *mode
	if *readFrac > 0 {
		base = fmt.Sprintf("kvreadmostly/r%d", int(*readFrac*100+0.5))
		res.SetConfig("read_frac", strconv.FormatFloat(*readFrac, 'g', -1, 64))
	}

	for _, lf := range lfs {
		newLock := lf.New
		var st *lockstat.Stats
		if *lockstatOn {
			st = lockstat.New()
			fac, err := lf.Factory(registry.WithStats(st))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			newLock = fac
			lockstat.InstallWaiterSink(st)
		}
		for _, sc := range shardCounts {
			workload := experiments.ShardWorkload(base, sc)
			for _, tc := range threads {
				cfg := kvstore.ReadRandomConfig{
					Threads:  tc,
					Keyspace: *keys,
					Duration: d,
					ReadFrac: *readFrac,
					Seed:     bf.Seed,
				}
				var m harness.Measurement
				if *mode == "readrandom" {
					m = experiments.KVShardedReadRandomMeasure(lf, newLock, sc, cfg, *keys, bf.Runs)
				} else {
					// Every run opens a fresh store; -runs is honored here
					// too (it used to be silently ignored in this mode).
					mk, sc := newLock, sc
					open := func(run harness.RunInfo) kvstore.Store {
						db := experiments.OpenKVStore(mk, sc)
						kvstore.FillSeq(db, *keys, 100)
						return db
					}
					w := kvstore.ReadWhileWritingWorkload(open, cfg, 100)
					m = harness.Measure(w, harness.Config{
						Threads:  tc,
						Duration: d,
						Warmup:   bf.Warmup,
						Runs:     bf.Runs,
						Seed:     bf.Seed,
					})
				}
				res.Add(harness.CellFromMeasurement(lf.Name, workload, mutexbench.Unit, m))
			}
		}
		if st != nil {
			lockstat.InstallWaiterSink(nil)
			lockstat.Publish("lockstat.kv."+lf.Name, st)
			if res.Lockstat == nil {
				res.Lockstat = map[string]lockstat.Snapshot{}
			}
			res.Lockstat[lf.Name] = st.Snapshot()
		}
	}

	if bf.JSON {
		if err := res.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	fmt.Fprintln(out, experiments.TrackANote)
	if *mode == "readrandom" {
		// Row labels carry the shard suffix ("Recipro/s4") so a shard
		// sweep gets one row per (lock, shard count) instead of
		// colliding on the lock name.
		t := harness.MatrixTableBy(res,
			fmt.Sprintf("Figure 3 — KV %s Mops/s over %d keys (median of %d; /sN = N shards)", base, *keys, bf.Runs),
			func(c harness.Cell) string {
				return c.Lock + strings.TrimPrefix(c.Workload, base)
			})
		render(t, out, bf.CSV)
	} else {
		t := table.New(fmt.Sprintf("KV readwhilewriting — readers + 1 writer over %d keys (median of %d)", *keys, bf.Runs),
			"Workload", "Lock", "Readers", "Read Mops/s", "Write ops")
		for _, c := range res.Cells {
			t.Add(c.Workload, c.Lock, table.I(int64(c.Threads)), table.F(c.Score, 3),
				table.U(uint64(c.Extras["writer_ops"])))
		}
		render(t, out, bf.CSV)
	}
	if *lockstatOn {
		fmt.Fprintln(out)
		var order []string
		for _, lf := range lfs {
			order = append(order, lf.Name)
		}
		lockstat.FprintReport(out, fmt.Sprintf("store lock telemetry (%s)", *mode), order, res.Lockstat, bf.CSV)
	}
}

func render(t *table.Table, out *os.File, csv bool) {
	if csv {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}
}
