// Command kvbench runs the §7.3 experiment (Figure 3): the readrandom
// workload against the LSM-lite key-value store, whose single coarse
// central mutex — the DBImpl::Mutex analog — is instantiated with each
// lock algorithm in turn.
//
// Usage:
//
//	kvbench [-keys=50000] [-duration=300ms] [-runs=3]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/kvstore"
	"repro/internal/mutexbench"
	"repro/internal/table"
)

func main() {
	mode := flag.String("mode", "readrandom", "workload: readrandom (Figure 3) or readwhilewriting")
	keys := flag.Int("keys", 50_000, "keys preloaded by fillseq")
	duration := flag.Duration("duration", 0, "measurement interval")
	runs := flag.Int("runs", 3, "runs per configuration (median reported)")
	threads := flag.Int("threads", 4, "reader threads (readwhilewriting)")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	fmt.Println(experiments.TrackANote)
	switch *mode {
	case "readrandom":
		t := experiments.Fig3(*duration, *keys, *runs)
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	case "readwhilewriting":
		d := *duration
		if d <= 0 {
			d = 300 * time.Millisecond
		}
		t := table.New(fmt.Sprintf("KV readwhilewriting — %d readers + 1 writer over %d keys", *threads, *keys),
			"Lock", "Read Mops/s", "Write ops")
		for _, lf := range mutexbench.PaperSet() {
			db := kvstore.Open(kvstore.Options{Lock: lf.New(), MemTableBytes: 256 << 10})
			kvstore.FillSeq(db, *keys, 100)
			res, wops := kvstore.ReadWhileWriting(db, kvstore.ReadRandomConfig{
				Threads:  *threads,
				Keyspace: *keys,
				Duration: d,
			}, 100)
			t.Add(lf.Name, table.F(res.Mops, 3), table.U(wops))
		}
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	default:
		fmt.Fprintln(os.Stderr, "unknown -mode")
		os.Exit(2)
	}
}
