// Command kvbench runs the §7.3 experiment (Figure 3): the readrandom
// workload against the LSM-lite key-value store, whose single coarse
// central mutex — the DBImpl::Mutex analog — is instantiated with each
// selected lock algorithm in turn.
//
// Usage:
//
//	kvbench [-mode=readrandom|readwhilewriting] [-locks=paper|all|...|list]
//	        [-keys=50000] [-duration=300ms] [-runs=3] [-threads=1,2,4]
//	        [-json] [-out=file] [-lockstat]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/kvstore"
	"repro/internal/lockstat"
	"repro/internal/mutexbench"
	"repro/internal/registry"
	"repro/internal/table"
)

func main() {
	mode := flag.String("mode", "readrandom", "workload: readrandom (Figure 3) or readwhilewriting")
	locksF := registry.NewLocksFlag("paper")
	flag.Var(locksF, "locks", registry.FlagUsage)
	keys := flag.Int("keys", 50_000, "keys preloaded by fillseq")
	bf := harness.Register(flag.CommandLine, harness.Spec{
		Runs:    3,
		Threads: "1,2,4,8,16,32",
	})
	lockstatOn := flag.Bool("lockstat", false, "instrument the DB's central mutex and attach per-lock telemetry to the report")
	flag.Parse()

	lfs, listed, err := locksF.Resolve(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if listed {
		return
	}
	if *mode != "readrandom" && *mode != "readwhilewriting" {
		fmt.Fprintln(os.Stderr, "unknown -mode; want readrandom or readwhilewriting")
		os.Exit(2)
	}
	threads, err := bf.ThreadCounts()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d := bf.Duration
	if d <= 0 {
		d = 300 * time.Millisecond
	}

	res := harness.NewResult("kvbench", "A", bf.Seed)
	res.SetConfig("mode", *mode)
	res.SetConfig("keys", strconv.Itoa(*keys))
	res.SetConfig("duration", d.String())
	res.SetConfig("runs", strconv.Itoa(bf.Runs))

	for _, lf := range lfs {
		newLock := lf.New
		var st *lockstat.Stats
		if *lockstatOn {
			st = lockstat.New()
			fac, err := lf.Factory(registry.WithStats(st))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			newLock = fac
			lockstat.InstallWaiterSink(st)
		}
		for _, tc := range threads {
			cfg := kvstore.ReadRandomConfig{
				Threads:  tc,
				Keyspace: *keys,
				Duration: d,
				Seed:     bf.Seed,
			}
			var m harness.Measurement
			if *mode == "readrandom" {
				m = experiments.KVReadRandomMeasure(lf, newLock, cfg, *keys, bf.Runs)
			} else {
				// Every run opens a fresh store; -runs is honored here
				// too (it used to be silently ignored in this mode).
				open := func(run harness.RunInfo) *kvstore.DB {
					db := kvstore.Open(kvstore.Options{Lock: newLock(), MemTableBytes: 256 << 10})
					kvstore.FillSeq(db, *keys, 100)
					return db
				}
				w := kvstore.ReadWhileWritingWorkload(open, cfg, 100)
				m = harness.Measure(w, harness.Config{
					Threads:  tc,
					Duration: d,
					Warmup:   bf.Warmup,
					Runs:     bf.Runs,
					Seed:     bf.Seed,
				})
			}
			res.Add(harness.CellFromMeasurement(lf.Name, *mode, mutexbench.Unit, m))
		}
		if st != nil {
			lockstat.InstallWaiterSink(nil)
			lockstat.Publish("lockstat.kv."+lf.Name, st)
			if res.Lockstat == nil {
				res.Lockstat = map[string]lockstat.Snapshot{}
			}
			res.Lockstat[lf.Name] = st.Snapshot()
		}
	}

	out, closeOut, err := bf.OutputFile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeOut()

	if bf.JSON {
		if err := res.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	fmt.Fprintln(out, experiments.TrackANote)
	if *mode == "readrandom" {
		t := harness.MatrixTable(res,
			fmt.Sprintf("Figure 3 — KV readrandom Mops/s over %d keys (median of %d)", *keys, bf.Runs))
		render(t, out, bf.CSV)
	} else {
		t := table.New(fmt.Sprintf("KV readwhilewriting — readers + 1 writer over %d keys (median of %d)", *keys, bf.Runs),
			"Lock", "Readers", "Read Mops/s", "Write ops")
		for _, c := range res.Cells {
			t.Add(c.Lock, table.I(int64(c.Threads)), table.F(c.Score, 3),
				table.U(uint64(c.Extras["writer_ops"])))
		}
		render(t, out, bf.CSV)
	}
	if *lockstatOn {
		fmt.Fprintln(out)
		var order []string
		for _, lf := range lfs {
			order = append(order, lf.Name)
		}
		lockstat.FprintReport(out, fmt.Sprintf("DB mutex telemetry (%s)", *mode), order, res.Lockstat, bf.CSV)
	}
}

func render(t *table.Table, out *os.File, csv bool) {
	if csv {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}
}
