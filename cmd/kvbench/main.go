// Command kvbench runs the §7.3 experiment (Figure 3): the readrandom
// workload against the LSM-lite key-value store, whose single coarse
// central mutex — the DBImpl::Mutex analog — is instantiated with each
// selected lock algorithm in turn.
//
// Usage:
//
//	kvbench [-mode=readrandom|readwhilewriting] [-locks=paper|all|...|list]
//	        [-keys=50000] [-duration=300ms] [-runs=3]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/kvstore"
	"repro/internal/lockstat"
	"repro/internal/registry"
	"repro/internal/stats"
	"repro/internal/table"
)

func main() {
	mode := flag.String("mode", "readrandom", "workload: readrandom (Figure 3) or readwhilewriting")
	locksF := registry.NewLocksFlag("paper")
	flag.Var(locksF, "locks", registry.FlagUsage)
	keys := flag.Int("keys", 50_000, "keys preloaded by fillseq")
	duration := flag.Duration("duration", 0, "measurement interval")
	runs := flag.Int("runs", 3, "runs per configuration (median reported)")
	threads := flag.Int("threads", 4, "reader threads (readwhilewriting and -lockstat readrandom)")
	csv := flag.Bool("csv", false, "emit CSV")
	lockstatOn := flag.Bool("lockstat", false, "instrument the DB's central mutex and print per-lock telemetry")
	flag.Parse()

	lfs, listed, err := locksF.Resolve(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if listed {
		return
	}

	fmt.Println(experiments.TrackANote)
	switch *mode {
	case "readrandom":
		if *lockstatOn {
			readRandomLockstat(lfs, *duration, *keys, *runs, *threads, *csv)
			return
		}
		t := experiments.Fig3Locks(lfs, *duration, *keys, *runs)
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	case "readwhilewriting":
		d := *duration
		if d <= 0 {
			d = 300 * time.Millisecond
		}
		t := table.New(fmt.Sprintf("KV readwhilewriting — %d readers + 1 writer over %d keys", *threads, *keys),
			"Lock", "Read Mops/s", "Write ops")
		telemetry := make(map[string]lockstat.Snapshot)
		var order []string
		for _, lf := range lfs {
			var st *lockstat.Stats
			var opts []registry.Option
			if *lockstatOn {
				st = lockstat.New()
				opts = append(opts, registry.WithStats(st))
				lockstat.InstallWaiterSink(st)
			}
			mu, err := lf.Build(opts...)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			db := kvstore.Open(kvstore.Options{Lock: mu, MemTableBytes: 256 << 10})
			kvstore.FillSeq(db, *keys, 100)
			res, wops := kvstore.ReadWhileWriting(db, kvstore.ReadRandomConfig{
				Threads:  *threads,
				Keyspace: *keys,
				Duration: d,
			}, 100)
			t.Add(lf.Name, table.F(res.Mops, 3), table.U(wops))
			if st != nil {
				lockstat.InstallWaiterSink(nil)
				lockstat.Publish("lockstat.kv."+lf.Name, st)
				telemetry[lf.Name] = st.Snapshot()
				order = append(order, lf.Name)
			}
		}
		if *csv {
			t.RenderCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		if *lockstatOn {
			fmt.Println()
			lockstat.FprintReport(os.Stdout, "DB mutex telemetry (readwhilewriting)", order, telemetry, *csv)
		}
	default:
		fmt.Fprintln(os.Stderr, "unknown -mode")
		os.Exit(2)
	}
}

// readRandomLockstat is the instrumented variant of the Figure 3 run:
// the DBImpl mutex of each selected lock is wrapped with telemetry and
// the readrandom workload is driven at one thread count, reporting
// throughput alongside the mutex's contention profile.
func readRandomLockstat(lfs []registry.Entry, dur time.Duration, keys, runs, threads int, csv bool) {
	if dur <= 0 {
		dur = 300 * time.Millisecond
	}
	t := table.New(fmt.Sprintf("KV readrandom T=%d over %d keys (median of %d) — instrumented mutex", threads, keys, runs),
		"Lock", "Mops/s")
	telemetry := make(map[string]lockstat.Snapshot)
	var order []string
	for _, lf := range lfs {
		st := lockstat.New()
		fac, err := lf.Factory(registry.WithStats(st))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		lockstat.InstallWaiterSink(st)
		scores := make([]float64, 0, runs)
		for r := 0; r < runs; r++ {
			db := kvstore.Open(kvstore.Options{Lock: fac(), MemTableBytes: 256 << 10})
			kvstore.FillSeq(db, keys, 100)
			res := kvstore.ReadRandom(db, kvstore.ReadRandomConfig{
				Threads:  threads,
				Keyspace: keys,
				Duration: dur,
				Seed:     uint64(r),
			})
			scores = append(scores, res.Mops)
		}
		lockstat.InstallWaiterSink(nil)
		lockstat.Publish("lockstat.kv."+lf.Name, st)
		t.Add(lf.Name, table.F(stats.Median(scores), 3))
		telemetry[lf.Name] = st.Snapshot()
		order = append(order, lf.Name)
	}
	if csv {
		t.RenderCSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
	fmt.Println()
	lockstat.FprintReport(os.Stdout, "DB mutex telemetry (readrandom)", order, telemetry, csv)
}
