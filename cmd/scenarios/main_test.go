package main

import (
	"bytes"
	"testing"

	"repro/internal/harness"
)

// The -json mode must emit the shared versioned schema: three
// informational cells (one per §4 scenario), round-trippable through
// the version-checked decoder, with the sustained scenario carrying
// its admission order.
func TestScenarioCellsRoundTrip(t *testing.T) {
	res := harness.NewResult("scenarios", "B", 0)
	res.Add(uncontended(true))
	res.Add(onset(true))
	res.Add(sustained(true))

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := harness.Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(back.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(back.Cells))
	}
	for _, c := range back.Cells {
		if c.Extras["steps"] <= 0 {
			t.Fatalf("cell %s has no steps", c.Key())
		}
	}
	last := back.Cells[2]
	if last.Workload != "sustained" || last.Notes["admission_order"] == "" {
		t.Fatalf("sustained cell missing admission order: %+v", last)
	}
	if last.Extras["admissions"] != 15 { // 5 threads × 3 episodes
		t.Fatalf("admissions = %v, want 15", last.Extras["admissions"])
	}
}
