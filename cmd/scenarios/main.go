// Command scenarios replays the paper's §4 "Execution Scenarios" —
// uncontended acquire/release, onset of contention (with the zombie
// end-of-segment element), and sustained contention — as annotated
// memory-operation traces of the Reciprocating Lock running on the
// deterministic coherence simulator. Every line is an actual operation
// the algorithm performed; the narration explains it in the paper's
// vocabulary.
//
// With -json the narration is suppressed and each scenario instead
// emits one informational cell of the versioned harness Result schema
// (simulator steps, clock, coherence events, and the admission order),
// so scenario behavior is diffable like every other harness.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coherence"
	"repro/internal/harness"
	"repro/internal/simlocks"
)

func main() {
	scenario := flag.String("scenario", "all", "uncontended, onset, sustained, all")
	bf := harness.Register(flag.CommandLine, harness.Spec{
		NoDuration: true, NoRuns: true, NoThreads: true, NoSeed: true,
	})
	flag.Parse()

	run := func(s string) bool { return *scenario == s || *scenario == "all" }
	quiet := bf.JSON
	res := harness.NewResult("scenarios", "B", 0)
	any := false
	if run("uncontended") {
		res.Add(uncontended(quiet))
		any = true
	}
	if run("onset") {
		res.Add(onset(quiet))
		any = true
	}
	if run("sustained") {
		res.Add(sustained(quiet))
		any = true
	}
	if !any {
		fmt.Fprintln(os.Stderr, "unknown -scenario")
		os.Exit(2)
	}
	if bf.JSON {
		out, closeOut, err := bf.OutputFile()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer closeOut()
		if err := res.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
}

// cell renders one finished scenario run as an informational schema
// cell: deterministic step/clock/event counts plus the admission order.
func cell(workload string, threads int, res coherence.Result) harness.Cell {
	var events uint64
	for _, st := range res.Stats {
		events += st.CoherenceEvents()
	}
	order := ""
	for _, a := range res.Admissions {
		order += string(rune('A' + a))
	}
	c := harness.Cell{
		Lock: "Recipro", Workload: workload, Threads: threads,
		Extras: map[string]float64{
			"steps":            float64(res.Steps),
			"clock":            float64(res.Clock),
			"coherence_events": float64(events),
			"admissions":       float64(len(res.Admissions)),
		},
	}
	if order != "" {
		c.Notes = map[string]string{"admission_order": order}
	}
	return c
}

// narrate wires a trace printer that renders lock-word values in the
// paper's encoding (nil / LOCKEDEMPTY / element names).
func narrate(sys *coherence.System, sched *coherence.Scheduler, gates map[uint64]string) {
	render := func(v uint64) string {
		switch v {
		case 0:
			return "nil(unlocked)"
		case 1:
			return "LOCKEDEMPTY"
		}
		if n, ok := gates[v]; ok {
			return n
		}
		return fmt.Sprintf("%d", v)
	}
	sched.Trace = func(cpu int, op string, a coherence.Addr, v uint64) {
		name := sys.Name(a)
		if n, ok := gates[uint64(a)]; ok {
			name = n
		}
		fmt.Printf("  T%d  %-8s %-12s %s\n", cpu+1, op, name, render(v))
	}
}

func header(title, blurb string) {
	fmt.Printf("\n▶ %s\n%s\n", title, blurb)
}

func uncontended(quiet bool) harness.Cell {
	if !quiet {
		header("Simple uncontended Acquire and Release (§4)",
			"  T1 swaps its element into the empty arrival word (returns nil:\n"+
				"  uncontended acquisition) and the release CAS reverts the word\n"+
				"  from E1 back to unlocked.")
	}
	sys := coherence.NewSystem(coherence.Config{CPUs: 1})
	lock := &simlocks.Recipro{}
	lock.Setup(sys, 1)
	sched := coherence.NewScheduler(sys, coherence.RoundRobin, coherence.DefaultCosts, 1, 0)
	if !quiet {
		narrate(sys, sched, map[uint64]string{2: "E1"})
	}
	res := sched.Run(func(c *coherence.Ctx) {
		lock.Acquire(c, 0)
		if !quiet {
			fmt.Println("  T1  --- in critical section ---")
		}
		lock.Release(c, 0)
	})
	return cell("uncontended", 1, res)
}

func onset(quiet bool) harness.Cell {
	if !quiet {
		header("Onset of contention (§4) — the zombie end-of-segment element",
			"  T1 fast-path acquires; T2 and T3 push while T1 runs. T1's release\n"+
				"  CAS fails (the word points at E3, not E1), so T1 detaches the\n"+
				"  segment [E3 E2 E1] and grants T3, conveying E1 — its own buried\n"+
				"  (zombie) element — as the end-of-segment marker. T2, finding its\n"+
				"  successor equal to the marker, quashes it and later unlocks.")
	}
	sys := coherence.NewSystem(coherence.Config{CPUs: 3})
	lock := &simlocks.Recipro{}
	lock.Setup(sys, 3)
	sched := coherence.NewScheduler(sys, coherence.RoundRobin, coherence.DefaultCosts, 1, 0)
	if !quiet {
		narrate(sys, sched, map[uint64]string{2: "E1", 3: "E2", 4: "E3"})
	}
	res := sched.Run(func(c *coherence.Ctx) {
		switch c.CPU {
		case 0:
			lock.Acquire(c, 0)
			if !quiet {
				fmt.Println("  T1  --- in critical section (T2, T3 arriving) ---")
			}
			// Long critical section: let both waiters push.
			c.Work(1)
			for i := 0; i < 24; i++ {
				c.Work(1)
			}
			lock.Release(c, 0)
		case 1:
			c.Work(2) // arrive second
			lock.Acquire(c, 1)
			if !quiet {
				fmt.Println("  T2  --- in critical section (terminus: quashed zombie E1) ---")
			}
			lock.Release(c, 1)
		case 2:
			c.Work(4) // arrive third
			lock.Acquire(c, 2)
			if !quiet {
				fmt.Println("  T3  --- in critical section ---")
			}
			lock.Release(c, 2)
		}
	})
	return cell("onset", 3, res)
}

func sustained(quiet bool) harness.Cell {
	if !quiet {
		header("Sustained contention (§4) — segments in steady state",
			"  Five threads recirculate with empty critical sections. Watch\n"+
				"  ownership relay through each detached entry segment (gate\n"+
				"  stores), the occasional CAS-fail + detach pair when a segment\n"+
				"  exhausts, and the LIFO-within / FIFO-between admission order\n"+
				"  that settles into the §9.1 palindromic cycle.")
	}
	sys := coherence.NewSystem(coherence.Config{CPUs: 5})
	lock := &simlocks.Recipro{}
	lock.Setup(sys, 5)
	sched := coherence.NewScheduler(sys, coherence.RoundRobin, coherence.DefaultCosts, 1, 0)
	if !quiet {
		gates := map[uint64]string{}
		for i := 0; i < 5; i++ {
			gates[uint64(2+i)] = fmt.Sprintf("E%d", i+1)
		}
		narrate(sys, sched, gates)
	}
	res := sched.Run(func(c *coherence.Ctx) {
		for i := 0; i < 3; i++ {
			lock.Acquire(c, c.CPU)
			c.Admit()
			if !quiet {
				fmt.Printf("  T%d  === ADMITTED (episode %d) ===\n", c.CPU+1, i+1)
			}
			lock.Release(c, c.CPU)
		}
	})
	if !quiet {
		fmt.Printf("\nadmission order: ")
		for _, a := range res.Admissions {
			fmt.Printf("%c", 'A'+a)
		}
		fmt.Println()
	}
	return cell("sustained", 5, res)
}
