// Command benchdiff is the repository's performance-regression
// comparator: it reads versioned harness Result files (any harness
// command's -json output) and compares them cell-by-cell
// (workload × lock × thread count) with noise-aware thresholds — the
// effective gate per cell is max(-threshold, noise-mult × the cell's
// own run-to-run coefficient of variation), so noisy cells must move
// further to be believed.
//
// Usage:
//
//	benchdiff old.json new.json     compare two result files
//	benchdiff -dir results/         walk a trajectory: diff each
//	                                consecutive pair of *.json files in
//	                                lexical (i.e. chronological, when
//	                                timestamp-named) order
//	benchdiff -check file.json      self-diff smoke test: a file must
//	                                compare clean against itself
//	benchdiff -merge -out=baseline.json a.json b.json ...
//	                                combine several harness results
//	                                (same track, disjoint cells) into
//	                                one baseline under the merged
//	                                harness name (-name, default
//	                                "suite") — the only sanctioned way
//	                                a baseline spans harness commands,
//	                                since plain diffs refuse
//	                                cross-harness comparisons
//
// Exit status: 0 no regressions, 1 at least one regression flagged,
// 2 usage or I/O error (including schema-version mismatches and
// cross-harness/cross-track comparisons).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := harness.DefaultDiffOptions()
	threshold := fs.Float64("threshold", def.Threshold, "minimum relative score drop flagged as a regression")
	noiseMult := fs.Float64("noise-mult", def.NoiseMult, "noise widening: gate = max(threshold, noise-mult × run CV)")
	dir := fs.String("dir", "", "diff each consecutive pair of *.json files in this directory")
	check := fs.String("check", "", "self-diff this result file (schema + comparator smoke test)")
	merge := fs.Bool("merge", false, "merge the argument result files into one baseline (requires -out)")
	mergeName := fs.String("name", "suite", "merged harness name for -merge")
	mergeOut := fs.String("out", "", "output path for -merge")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	opt := harness.DiffOptions{Threshold: *threshold, NoiseMult: *noiseMult}

	switch {
	case *merge:
		if fs.NArg() < 1 || *mergeOut == "" || *check != "" || *dir != "" {
			fmt.Fprintln(stderr, "usage: benchdiff -merge -out=baseline.json [-name=suite] a.json [b.json ...]")
			return 2
		}
		ins := make([]*harness.Result, 0, fs.NArg())
		for _, p := range fs.Args() {
			r, err := harness.ReadFile(p)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			ins = append(ins, r)
		}
		merged, err := harness.Merge(*mergeName, ins...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if err := merged.WriteFile(*mergeOut); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "merged %d file(s), %d cell(s) → %s (harness %q)\n",
			len(ins), len(merged.Cells), *mergeOut, merged.Harness)
		return 0

	case *check != "":
		if fs.NArg() != 0 || *dir != "" {
			fmt.Fprintln(stderr, "-check takes no other arguments")
			return 2
		}
		return diffFiles(*check, *check, opt, stdout, stderr)

	case *dir != "":
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "-dir takes no positional arguments")
			return 2
		}
		files, err := filepath.Glob(filepath.Join(*dir, "*.json"))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		sort.Strings(files)
		if len(files) < 2 {
			fmt.Fprintf(stderr, "%s: need at least two *.json files for a trajectory, found %d\n", *dir, len(files))
			return 2
		}
		worst := 0
		for i := 1; i < len(files); i++ {
			if code := diffFiles(files[i-1], files[i], opt, stdout, stderr); code > worst {
				worst = code
			}
		}
		return worst

	case fs.NArg() == 2:
		return diffFiles(fs.Arg(0), fs.Arg(1), opt, stdout, stderr)

	default:
		fmt.Fprintln(stderr, "usage: benchdiff [flags] old.json new.json | -dir results/ | -check file.json")
		return 2
	}
}

// diffFiles compares two result files and renders the report.
func diffFiles(oldPath, newPath string, opt harness.DiffOptions, stdout, stderr io.Writer) int {
	oldR, err := harness.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	newR, err := harness.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	rep, err := harness.Diff(oldR, newR, opt)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, w := range rep.EnvWarnings {
		fmt.Fprintf(stdout, "warning: environment differs: %s\n", w)
	}
	rep.Table(fmt.Sprintf("%s: %s → %s", oldR.Harness, oldPath, newPath)).Render(stdout)
	for _, k := range rep.MissingInNew {
		fmt.Fprintf(stdout, "coverage: cell %s missing in %s\n", k, newPath)
	}
	for _, k := range rep.AddedInNew {
		fmt.Fprintf(stdout, "coverage: cell %s added in %s\n", k, newPath)
	}
	if n := rep.Regressions(); n > 0 {
		fmt.Fprintf(stdout, "%d regression(s), %d improvement(s), %d cell(s) compared\n",
			n, rep.Improvements(), len(rep.Deltas))
		return 1
	}
	fmt.Fprintf(stdout, "no regressions (%d improvement(s), %d cell(s) compared)\n",
		rep.Improvements(), len(rep.Deltas))
	return 0
}
