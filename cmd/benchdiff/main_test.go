package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// fixture writes a mutexbench-shaped result whose single cell scores
// score, returning the path.
func fixture(t *testing.T, dir, name string, score float64) string {
	t.Helper()
	res := harness.NewResult("mutexbench", "A", 1)
	sum := harness.Summarize([]float64{score, score, score})
	res.Add(harness.Cell{
		Lock: "TKT", Workload: "max", Threads: 4, Unit: "Mops/s",
		Score: score, Runs: []float64{score, score, score}, Summary: &sum,
	})
	path := filepath.Join(dir, name)
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSelfCheckExitsZero(t *testing.T) {
	dir := t.TempDir()
	path := fixture(t, dir, "base.json", 10)
	var out, errb bytes.Buffer
	if code := run([]string{"-check", path}, &out, &errb); code != 0 {
		t.Fatalf("self-check exit = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Fatalf("self-check output: %s", out.String())
	}
}

func TestInjectedRegressionExitsOne(t *testing.T) {
	dir := t.TempDir()
	old := fixture(t, dir, "old.json", 10)
	next := fixture(t, dir, "new.json", 5) // -50%, far past any gate
	var out, errb bytes.Buffer
	if code := run([]string{old, next}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1; out: %s err: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("report should flag the regression: %s", out.String())
	}
}

func TestDirTrajectory(t *testing.T) {
	dir := t.TempDir()
	fixture(t, dir, "001.json", 10)
	fixture(t, dir, "002.json", 10.5)
	fixture(t, dir, "003.json", 4) // regression at the last step
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir}, &out, &errb); code != 1 {
		t.Fatalf("trajectory exit = %d, want 1; err: %s", code, errb.String())
	}
	// Two consecutive diffs rendered.
	if n := strings.Count(out.String(), "mutexbench: "); n != 2 {
		t.Fatalf("rendered %d diffs, want 2: %s", n, out.String())
	}
}

func TestUsageAndIOErrorsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{"missing-a.json", "missing-b.json"}, &out, &errb); code != 2 {
		t.Fatalf("missing-file exit = %d, want 2", code)
	}
	dir := t.TempDir()
	if code := run([]string{"-dir", dir}, &out, &errb); code != 2 {
		t.Fatalf("empty-dir exit = %d, want 2", code)
	}
}

// -merge combines a mutexbench and a kvbench result into one baseline
// that then passes -check — the bench-json recipe in the Makefile.
func TestMergeProducesCheckableBaseline(t *testing.T) {
	dir := t.TempDir()
	a := fixture(t, dir, "a.json", 10)
	res := harness.NewResult("kvbench", "A", 1)
	res.Add(harness.Cell{Lock: "TKT", Workload: "readrandom/s4", Threads: 4, Unit: "Mops/s", Score: 3})
	b := filepath.Join(dir, "b.json")
	if err := res.WriteFile(b); err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(dir, "merged.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-merge", "-out", merged, a, b}, &out, &errb); code != 0 {
		t.Fatalf("merge exit = %d, stderr: %s", code, errb.String())
	}
	got, err := harness.ReadFile(merged)
	if err != nil {
		t.Fatalf("merged file unreadable: %v", err)
	}
	if got.Harness != "suite" || len(got.Cells) != 2 {
		t.Fatalf("merged: harness %q, %d cells", got.Harness, len(got.Cells))
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-check", merged}, &out, &errb); code != 0 {
		t.Fatalf("merged baseline fails -check: %s", errb.String())
	}

	// Same file twice: the collision must surface as a usage error.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-merge", "-out", merged, a, a}, &out, &errb); code != 2 {
		t.Fatalf("duplicate merge exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "collision") {
		t.Fatalf("stderr: %s", errb.String())
	}

	// -merge without -out is a usage error.
	if code := run([]string{"-merge", a, b}, &out, &errb); code != 2 {
		t.Fatal("merge without -out accepted")
	}
}

func TestCrossHarnessRefused(t *testing.T) {
	dir := t.TempDir()
	a := fixture(t, dir, "a.json", 10)
	res := harness.NewResult("kvbench", "A", 1)
	res.Add(harness.Cell{Lock: "TKT", Workload: "max", Threads: 4, Unit: "Mops/s", Score: 10})
	b := filepath.Join(dir, "b.json")
	if err := res.WriteFile(b); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{a, b}, &out, &errb); code != 2 {
		t.Fatalf("cross-harness exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "harness mismatch") {
		t.Fatalf("stderr: %s", errb.String())
	}
}
