// Command clusterexplore runs stateless model checking over the
// deterministic cluster simulation: it enumerates the delivery/timer
// orders a schedule controller can impose on a small topology preset,
// replaying the full simulation (and its invariant battery) once per
// schedule. On a violation it delta-debugs the failing (script,
// schedule) pair to a locally minimal repro and prints the exact
// cmd/clustersim invocation that replays it.
//
// Usage:
//
//	clusterexplore -list
//	clusterexplore [-preset=explore-small] [-seed=1] [-script=NAME|FILE]
//	               [-delays=N] [-window=DUR] [-budget=N] [-max-branch=N]
//	               [-no-prune] [-no-fencing] [-break-dedup] [-skip-reconcile]
//	               [-schedule=0,0,1] [-repro-out=FILE] [-quiet]
//
// -delays bounds the search to schedules within N delays of canonical
// order (negative, the default, means exhaustive). -schedule skips the
// search and replays one fixed schedule. -repro-out writes the shrunk
// repro as a canonical script file whose header comments carry the
// preset, seed, mutations, and branch schedule.
//
// Exit codes follow the shared model-checking convention
// (internal/verdict): 0 VERIFIED, 1 violation found, 2 usage error,
// 3 INCOMPLETE (search truncated by budget or depth; not a proof).
// Exit 2 is reserved for flag/argument mistakes; a checker runtime
// failure (e.g. a broken determinism contract) also exits 3 — no
// verdict was reached, and a CI gate must never read a checker crash
// as a usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/explore"
	"repro/internal/verdict"
)

type options struct {
	preset      string
	seed        uint64
	script      string
	delays      int
	window      time.Duration
	budget      int
	maxBr       int
	noPrune     bool
	noFence     bool
	dedup       bool
	skipRec     bool
	schedule    string
	scheduleSet bool
	reproOut    string
	quiet       bool
	list        bool
}

func parseFlags(args []string, errOut io.Writer) (*options, error) {
	fs := flag.NewFlagSet("clusterexplore", flag.ContinueOnError)
	fs.SetOutput(errOut)
	o := &options{}
	fs.StringVar(&o.preset, "preset", "explore-small", "topology/timing preset (see -list)")
	fs.Uint64Var(&o.seed, "seed", 1, "PRNG seed for the simulation's own draws")
	fs.StringVar(&o.script, "script", "", "fault script: canonical name or file path")
	fs.IntVar(&o.delays, "delays", -1, "delay bound (schedules within N delays of canonical); negative = exhaustive")
	fs.DurationVar(&o.window, "window", 0, "override the preset's schedule window (0 = preset value)")
	fs.IntVar(&o.budget, "budget", 0, "max schedules to run (0 = default)")
	fs.IntVar(&o.maxBr, "max-branch", 0, "max branch points per schedule (0 = unlimited)")
	fs.BoolVar(&o.noPrune, "no-prune", false, "disable sleep-set pruning")
	fs.BoolVar(&o.noFence, "no-fencing", false, "mutation: disable the replica fencing gate")
	fs.BoolVar(&o.dedup, "break-dedup", false, "mutation: disable replica write dedup")
	fs.BoolVar(&o.skipRec, "skip-reconcile", false, "mutation: drop the post-heal reconcile pass")
	fs.StringVar(&o.schedule, "schedule", "", "replay this fixed branch-choice schedule instead of searching")
	fs.StringVar(&o.reproOut, "repro-out", "", "on violation, write the shrunk repro script here")
	fs.BoolVar(&o.quiet, "quiet", false, "print only the verdict line")
	fs.BoolVar(&o.list, "list", false, "list presets and canonical scripts, then exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "schedule" {
			o.scheduleSet = true
		}
	})
	return o, nil
}

func loadScript(arg string) (*cluster.Script, error) {
	if arg == "" {
		return nil, nil
	}
	if s, err := cluster.LoadScript(arg); err == nil {
		return s, nil
	}
	text, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("-script %q is neither a canonical script nor a readable file: %w", arg, err)
	}
	return cluster.ParseScript(string(text))
}

func (o *options) buildConfig() (cluster.Config, error) {
	cfg, err := cluster.Preset(o.preset)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg.Seed = o.seed
	if o.window > 0 {
		cfg.ScheduleWindow = o.window
	}
	cfg.DisableFencing = o.noFence
	cfg.BreakDedup = o.dedup
	cfg.SkipReconcile = o.skipRec
	script, err := loadScript(o.script)
	if err != nil {
		return cluster.Config{}, err
	}
	// Validate here so a script that parses but names out-of-range
	// endpoints is a usage error (exit 2), not a runtime failure deep
	// inside the search.
	if script != nil {
		if err := script.Validate(cfg.Nodes, cfg.Shards); err != nil {
			return cluster.Config{}, fmt.Errorf("-script %q: %w", o.script, err)
		}
	}
	cfg.Script = script
	return cfg, nil
}

// runtimeFailure reports a checker malfunction (nondeterministic
// replay, a simulation error that slipped past flag validation): no
// verdict was reached, so the run is INCOMPLETE — exit 2 stays
// reserved for flag/argument errors.
func runtimeFailure(preset, what string, err error, out, errOut io.Writer) int {
	fmt.Fprintln(errOut, err)
	fmt.Fprintln(out, verdict.Line(preset, verdict.Incomplete,
		fmt.Sprintf("%s aborted: %v", what, err)))
	return verdict.ExitIncomplete
}

// mutationFlags renders the active mutation flags, for repro lines and
// the repro file header.
func (o *options) mutationFlags() []string {
	var m []string
	if o.noFence {
		m = append(m, "-no-fencing")
	}
	if o.dedup {
		m = append(m, "-break-dedup")
	}
	if o.skipRec {
		m = append(m, "-skip-reconcile")
	}
	return m
}

// reproLine renders the cmd/clustersim invocation that replays a
// repro: the preset pins topology and timing, the script argument the
// faults, and the schedule the branch choices.
func (o *options) reproLine(scriptArg string, schedule []int) string {
	parts := []string{"clustersim",
		fmt.Sprintf("-preset=%s", o.preset),
		fmt.Sprintf("-seed=%d", o.seed),
	}
	if scriptArg != "" {
		parts = append(parts, fmt.Sprintf("-script=%s", scriptArg))
	}
	if o.window > 0 {
		parts = append(parts, fmt.Sprintf("-window=%v", o.window))
	}
	parts = append(parts, o.mutationFlags()...)
	parts = append(parts, fmt.Sprintf("-schedule=%s", explore.FormatSchedule(schedule)))
	return strings.Join(parts, " ")
}

func list(out io.Writer) {
	fmt.Fprintln(out, "presets:")
	for _, name := range cluster.PresetNames() {
		cfg, _ := cluster.Preset(name)
		fmt.Fprintf(out, "  %-16s %d nodes × %d shards, horizon %v, window %v\n",
			name, cfg.Nodes, cfg.Shards, cfg.Duration, cfg.ScheduleWindow)
	}
	fmt.Fprintln(out, "canonical fault scripts:")
	for _, name := range cluster.ScriptNames() {
		s, err := cluster.LoadScript(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(out, "  %-24s %d steps\n", name, len(s.Steps))
	}
}

func run(args []string, out, errOut io.Writer) int {
	o, err := parseFlags(args, errOut)
	if err != nil {
		return verdict.ExitUsage
	}
	if o.list {
		list(out)
		return verdict.ExitVerified
	}
	cfg, err := o.buildConfig()
	if err != nil {
		fmt.Fprintln(errOut, err)
		return verdict.ExitUsage
	}

	if o.scheduleSet {
		return o.runReplay(cfg, out, errOut)
	}
	return o.runSearch(cfg, out, errOut)
}

// runReplay executes one fixed schedule — the repro path.
func (o *options) runReplay(cfg cluster.Config, out, errOut io.Writer) int {
	sched, err := explore.ParseSchedule(o.schedule)
	if err != nil {
		fmt.Fprintln(errOut, err)
		return verdict.ExitUsage
	}
	res, err := explore.Replay(cfg, sched)
	if err != nil {
		return runtimeFailure(o.preset, "replay", err, out, errOut)
	}
	if len(res.Violations) > 0 {
		fmt.Fprintln(out, verdict.Line(o.preset, verdict.Violation,
			fmt.Sprintf("schedule %q: %v", o.schedule, res.Violations[0])))
		if !o.quiet {
			fmt.Fprint(errOut, res.FailureReport(o.reproLine(o.script, sched)))
		}
		return verdict.ExitViolation
	}
	fmt.Fprintln(out, verdict.Line(o.preset, verdict.Verified,
		fmt.Sprintf("schedule %q replayed clean in %d events", o.schedule, res.Events)))
	return verdict.ExitVerified
}

// runSearch is the main path: enumerate, and on a violation shrink and
// report.
func (o *options) runSearch(cfg cluster.Config, out, errOut io.Writer) int {
	opts := explore.Options{
		Config:    cfg,
		MaxBranch: o.maxBr,
		Budget:    o.budget,
		Delays:    o.delays,
		NoPrune:   o.noPrune,
	}
	res, err := explore.Search(opts)
	if err != nil {
		return runtimeFailure(o.preset, "search", err, out, errOut)
	}

	bound := "exhaustive"
	if o.delays >= 0 {
		bound = fmt.Sprintf("delay-bounded ≤%d", o.delays)
	}
	switch {
	case res.Violation != nil:
		return o.reportViolation(cfg, res, out, errOut)
	case res.Verified():
		fmt.Fprintln(out, verdict.Line(o.preset, verdict.Verified,
			fmt.Sprintf("%s search: %d schedules pass (pruned %d, max depth %d)",
				bound, res.Stats.Schedules, res.Stats.PrunedTails, res.Stats.MaxDepth)))
		return verdict.ExitVerified
	default:
		why := "budget exhausted"
		if res.DepthCapped {
			why = "depth-capped at -max-branch"
		}
		fmt.Fprintln(out, verdict.Line(o.preset, verdict.Incomplete,
			fmt.Sprintf("%s search truncated (%s) after %d schedules; no violation found, but this is not a verification",
				bound, why, res.Stats.Schedules)))
		return verdict.ExitIncomplete
	}
}

func (o *options) reportViolation(cfg cluster.Config, res *explore.Result, out, errOut io.Writer) int {
	fmt.Fprintln(out, verdict.Line(o.preset, verdict.Violation,
		fmt.Sprintf("after %d schedules: %v\nschedule: %s",
			res.Stats.Schedules, res.Violation.Violations[0], explore.FormatSchedule(res.Schedule))))

	sh, err := explore.Shrink(cfg, res.Schedule)
	if err != nil {
		// Shrinking failed (should not happen for a reproducible
		// violation); fall back to the unshrunk repro.
		fmt.Fprintf(errOut, "shrink failed: %v\n", err)
		fmt.Fprintf(out, "repro: %s\n", o.reproLine(o.script, res.Schedule))
		return verdict.ExitViolation
	}
	steps := 0
	if sh.Script != nil {
		steps = len(sh.Script.Steps)
	}
	if !o.quiet {
		fmt.Fprintf(out, "shrunk: class=%s schedule=[%s] script=%d step(s)\n",
			sh.Class, explore.FormatSchedule(sh.Schedule), steps)
		fmt.Fprint(errOut, sh.Result.FailureReport(""))
	}

	scriptArg := o.script
	if o.reproOut != "" {
		text := sh.ReproFile(o.preset, o.seed, o.mutationFlags())
		if werr := os.WriteFile(o.reproOut, []byte(text), 0o644); werr != nil {
			fmt.Fprintf(errOut, "writing -repro-out: %v\n", werr)
		} else {
			scriptArg = o.reproOut
			fmt.Fprintf(out, "repro script written to %s\n", o.reproOut)
		}
	}
	if scriptArg == o.script {
		// No repro file: the line must replay against the ORIGINAL
		// script, so use the unshrunk schedule (the shrunk one is only
		// minimal jointly with the shrunk script).
		fmt.Fprintf(out, "repro: %s\n", o.reproLine(o.script, res.Schedule))
	} else {
		fmt.Fprintf(out, "repro: %s\n", o.reproLine(scriptArg, sh.Schedule))
	}
	return verdict.ExitViolation
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
