package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cluster/explore"
	"repro/internal/verdict"
)

func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestUsageErrors(t *testing.T) {
	// A script that parses but names an out-of-range endpoint is still
	// a usage mistake: buildConfig validates it against the preset, so
	// the error surfaces as exit 2 rather than a runtime failure.
	badScript := filepath.Join(t.TempDir(), "bad.script")
	if err := os.WriteFile(badScript, []byte("at 1ms crash n9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-bogus-flag"},
		{"-preset=no-such-preset"},
		{"-script=no-such-script-or-file"},
		{"-script=" + badScript},
		{"-schedule=1,x,2"},
	} {
		if code, _, _ := runCmd(t, args...); code != verdict.ExitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, verdict.ExitUsage)
		}
	}
}

// TestRuntimeFailureIncomplete pins the exit-code reservation the
// convention promises: a checker malfunction at runtime exits 3
// (INCOMPLETE — no verdict reached), never the usage code a CI gate
// would read as a flag mistake. Driven by handing runSearch and
// runReplay a config that fails inside cluster.Run (an out-of-range
// script endpoint that bypassed buildConfig's validation).
func TestRuntimeFailureIncomplete(t *testing.T) {
	cfg, err := cluster.Preset("explore-small")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := cluster.ParseScript("at 1ms crash n9")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Script = sc
	o := &options{preset: "explore-small"}

	var out, errOut bytes.Buffer
	if code := o.runSearch(cfg, &out, &errOut); code != verdict.ExitIncomplete {
		t.Errorf("runSearch: exit %d, want %d (stderr: %s)", code, verdict.ExitIncomplete, errOut.String())
	}
	if !strings.Contains(out.String(), "INCOMPLETE") {
		t.Errorf("runSearch verdict line:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := o.runReplay(cfg, &out, &errOut); code != verdict.ExitIncomplete {
		t.Errorf("runReplay: exit %d, want %d (stderr: %s)", code, verdict.ExitIncomplete, errOut.String())
	}
	if !strings.Contains(out.String(), "INCOMPLETE") {
		t.Errorf("runReplay verdict line:\n%s", out.String())
	}
}

func TestList(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != verdict.ExitVerified {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"explore-small", "explore-wide", "expire-churn-tiny"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestExhaustiveVerified pins the headline behavior: the full search
// over the small preset completes and reports a verification, exit 0.
func TestExhaustiveVerified(t *testing.T) {
	code, out, errOut := runCmd(t, "-seed=1")
	if code != verdict.ExitVerified {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "VERIFIED") || !strings.Contains(out, "exhaustive") {
		t.Errorf("output:\n%s", out)
	}
}

// TestMutationViolation pins the failure path end to end: the
// skip-reconcile mutation is detected, shrunk, written to -repro-out,
// and the printed repro line names that file. The emitted script must
// itself parse, and its schedule must replay to the same class.
func TestMutationViolation(t *testing.T) {
	repro := filepath.Join(t.TempDir(), "repro.script")
	code, out, _ := runCmd(t,
		"-seed=1", "-script=expire-churn-tiny", "-skip-reconcile",
		"-repro-out="+repro)
	if code != verdict.ExitViolation {
		t.Fatalf("exit %d, want %d; output:\n%s", code, verdict.ExitViolation, out)
	}
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, cluster.ClassReconcile) {
		t.Errorf("output missing FAIL/%s:\n%s", cluster.ClassReconcile, out)
	}
	if !strings.Contains(out, "repro: clustersim -preset=explore-small") ||
		!strings.Contains(out, "-script="+repro) {
		t.Errorf("repro line missing or not pointing at the repro file:\n%s", out)
	}

	text, err := os.ReadFile(repro)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "class="+cluster.ClassReconcile) {
		t.Errorf("repro file header:\n%s", text)
	}
	sc, err := cluster.ParseScript(string(text))
	if err != nil {
		t.Fatalf("repro file does not parse as a script: %v", err)
	}

	// Replay the repro exactly as the printed clustersim line would.
	cfg, err := cluster.Preset("explore-small")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 1
	cfg.SkipReconcile = true
	if len(sc.Steps) > 0 {
		cfg.Script = sc
	}
	res, err := explore.Replay(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		found = found || v.Class == cluster.ClassReconcile
	}
	if !found {
		t.Errorf("repro replay violations: %v", res.Violations)
	}
}

// TestTinyBudgetIncomplete pins exit 3: a truncated search must not
// report verification.
func TestTinyBudgetIncomplete(t *testing.T) {
	code, out, _ := runCmd(t, "-seed=3", "-budget=2")
	if code != verdict.ExitIncomplete {
		t.Fatalf("exit %d, want %d; output:\n%s", code, verdict.ExitIncomplete, out)
	}
	if !strings.Contains(out, "INCOMPLETE") || !strings.Contains(out, "not a verification") {
		t.Errorf("output:\n%s", out)
	}
}

// TestScheduleReplay pins -schedule: replay-only mode, clean and
// violating.
func TestScheduleReplay(t *testing.T) {
	code, out, _ := runCmd(t, "-seed=1", "-schedule=0,0")
	if code != verdict.ExitVerified {
		t.Fatalf("clean replay: exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "replayed clean") {
		t.Errorf("output:\n%s", out)
	}

	code, out, errOut := runCmd(t, "-seed=1", "-schedule=", "-skip-reconcile", "-script=expire-churn-tiny")
	if code != verdict.ExitViolation {
		t.Fatalf("violating replay: exit %d", code)
	}
	if !strings.Contains(out, cluster.ClassReconcile) || !strings.Contains(errOut, "repro:") {
		t.Errorf("out:\n%s\nerr:\n%s", out, errOut)
	}
}

// TestDelayBoundedHunt pins the delay-bounded mode the Makefile tier
// uses: the break-dedup mutation is invisible canonically but found
// within two delays once the window is widened.
func TestDelayBoundedHunt(t *testing.T) {
	code, out, _ := runCmd(t,
		"-seed=1", "-script=expire-churn-tiny", "-window=1ms", "-delays=2", "-break-dedup")
	if code != verdict.ExitViolation {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, cluster.ClassVersionRegres) || !strings.Contains(out, "shrunk:") {
		t.Errorf("output:\n%s", out)
	}
	// And the honest build under the same bound stays clean.
	code, out, _ = runCmd(t,
		"-seed=1", "-script=expire-churn-tiny", "-window=1ms", "-delays=2")
	if code != verdict.ExitVerified {
		t.Fatalf("honest hunt: exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "delay-bounded") {
		t.Errorf("verified line should name the bound:\n%s", out)
	}
}
