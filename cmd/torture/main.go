// Command torture runs a randomized multi-lock stress against every
// lock implementation in the repository: worker goroutines acquire
// random subsets of a lock table in canonical order (plural locking),
// mutate lock-protected counters, release in imbalanced order, and
// randomly churn (exit and get replaced). A cancellation lane mixes in
// bounded acquisitions (TryLock / LockFor / LockCtx) that frequently
// abandon mid-wait. Invariant violations — mutual exclusion breaches
// or lost updates — abort with a report that includes the run's seed.
//
// With -chaos, the internal/chaos fault-injection layer is armed with
// the run seed: deterministic delays, forced preemptions at
// linearization points, spurious futex wakeups, and probabilistic
// TryLock failures. With -stall-timeout > 0, a watchdog aborts the run
// (dumping the seed, chaos report, telemetry, and all goroutine
// stacks) if no worker completes an episode within the window.
//
// Usage:
//
//	torture [-duration=10s] [-locks=all|paper|...|list] [-workers=8]
//	        [-table=16] [-seed=1] [-chaos] [-stall-timeout=0] [-lockstat]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounded"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/lockstat"
	"repro/internal/registry"
	"repro/internal/rwlock"
	"repro/internal/xrand"
)

type guarded struct {
	mu sync.Locker
	// bnd is nil when mu is unboundable; rw/opt are set only when mu
	// actually shares its read path (capability-probed, so decorator
	// fallback surfaces don't count) — at most one of them is non-nil,
	// preferring the blocking shared surface.
	bnd    bounded.Locker
	rw     rwlock.RWLocker
	opt    rwlock.OptimisticLocker
	inside int32
	count  int64
}

// runSeed is the seed of the current run, surfaced in every failure
// report so adversarial schedules are reproducible.
var runSeed uint64

func main() {
	duration := flag.Duration("duration", 10*time.Second, "total stress time (split across lock types)")
	locksF := registry.NewLocksFlag("all")
	flag.Var(locksF, "locks", registry.FlagUsage)
	workers := flag.Int("workers", 8, "concurrent workers")
	tableSize := flag.Int("table", 16, "locks per table")
	lockstatOn := flag.Bool("lockstat", false, "run every lock through the telemetry wrapper and print per-type telemetry")
	seed := flag.Uint64("seed", 1, "seed for worker schedules and chaos injection")
	chaosOn := flag.Bool("chaos", false, "arm deterministic fault injection (internal/chaos) with the run seed")
	stallTimeout := flag.Duration("stall-timeout", 0, "abort with a diagnostic dump if no episode completes within this window (0 disables)")
	flag.Parse()

	runSeed = *seed
	lfs, listed, err := locksF.Resolve(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if listed {
		return
	}

	fmt.Printf("torture: seed=%d chaos=%v stall-timeout=%v\n", runSeed, *chaosOn, *stallTimeout)
	if *chaosOn {
		chaos.Enable(chaos.DefaultConfig(runSeed))
		defer chaos.Disable()
	}

	per := *duration / time.Duration(len(lfs))
	telemetry := make(map[string]lockstat.Snapshot)
	var order []string
	for _, lf := range lfs {
		fmt.Printf("%-12s ", lf.Name)
		var st *lockstat.Stats
		if *lockstatOn {
			// One Stats per lock type across the whole table of
			// instances: torture is a multi-lock workload, so the
			// telemetry is per-algorithm, not per-instance.
			st = lockstat.New()
			lockstat.InstallWaiterSink(st)
		}
		ops, acquires, abandons, reads := torture(lf, per, *workers, *tableSize, st, *stallTimeout, *chaosOn)
		if st != nil {
			lockstat.InstallWaiterSink(nil)
			lockstat.Publish("lockstat.torture."+lf.Name, st)
			telemetry[lf.Name] = st.Snapshot()
			order = append(order, lf.Name)
		}
		line := fmt.Sprintf("ok: %d multi-lock ops, %d acquisitions, %d abandons", ops, acquires, abandons)
		if reads > 0 {
			line += fmt.Sprintf(", %d shared reads", reads)
		}
		fmt.Println(line)
	}
	fmt.Println("all lock types survived")
	if *lockstatOn {
		fmt.Println()
		lockstat.FprintReport(os.Stdout, "Torture telemetry (per lock type, whole table pooled)", order, telemetry, false)
	}
	if *chaosOn {
		fmt.Println()
		printChaosReport(os.Stdout)
	}
}

// printChaosReport renders the accumulated injection counters, with a
// per-site breakdown under each point that absorbed injections so the
// report names the faulting call sites, not just the points.
func printChaosReport(w *os.File) {
	rep := chaos.Report()
	if len(rep) == 0 {
		fmt.Fprintln(w, "chaos: no injection points hit")
		return
	}
	fmt.Fprintf(w, "chaos injection report (seed=%d):\n", runSeed)
	fmt.Fprintf(w, "  %-34s %10s %8s %8s %8s %8s\n", "point", "calls", "delay", "preempt", "fail", "wake")
	for _, ps := range rep {
		fmt.Fprintf(w, "  %-34s %10d %8d %8d %8d %8d\n",
			ps.Name, ps.Calls, ps.Delays, ps.Preempts, ps.Fails, ps.Wakes)
		for _, ss := range ps.Sites {
			fmt.Fprintf(w, "    @%-32s %10s %8d %8d %8d %8d\n",
				ss.Label, "", ss.Delays, ss.Preempts, ss.Fails, ss.Wakes)
		}
	}
}

// printRecentInjections renders the tail of the chaos injection ring —
// the last faults fired before a stall or violation, each naming its
// point and call site.
func printRecentInjections(w *os.File) {
	recent := chaos.Recent()
	if len(recent) == 0 {
		return
	}
	fmt.Fprintf(w, "last %d chaos injections (oldest first):\n", len(recent))
	for _, inj := range recent {
		fmt.Fprintf(w, "  #%-6d %s\n", inj.Seq, inj.String())
	}
}

// violation aborts the run, always naming the seed. When chaos is
// armed the dump also names the most recent injection sites, so the
// failure report points at the code paths being perturbed.
func violation(format string, args ...any) {
	if chaos.Enabled() {
		printChaosReport(os.Stderr)
		printRecentInjections(os.Stderr)
	}
	panic(fmt.Sprintf("(seed %d) ", runSeed) + fmt.Sprintf(format, args...))
}

// watchdog aborts the process with a diagnostic dump when heartbeat
// stops advancing for longer than window.
func watchdog(name string, heartbeat *atomic.Uint64, window time.Duration, st *lockstat.Stats, stop <-chan struct{}) {
	poll := window / 8
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	last := heartbeat.Load()
	lastChange := clock.Wall.Now()
	for {
		t := clock.Wall.NewTimer(poll)
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C():
		}
		cur := heartbeat.Load()
		if cur != last {
			last = cur
			lastChange = clock.Wall.Now()
			continue
		}
		if clock.Wall.Now()-lastChange < window {
			continue
		}
		fmt.Fprintf(os.Stderr, "\nWATCHDOG STALL: %s made no progress for %v (seed %d)\n", name, window, runSeed)
		if chaos.Enabled() {
			printChaosReport(os.Stderr)
			printRecentInjections(os.Stderr)
		}
		if st != nil {
			snaps := map[string]lockstat.Snapshot{name: st.Snapshot()}
			lockstat.FprintReport(os.Stderr, "Telemetry at stall", []string{name}, snaps, false)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "\n-- goroutine dump --\n%s\n", buf[:n])
		os.Exit(1)
	}
}

func torture(lf registry.Entry, d time.Duration, workers, tableSize int, st *lockstat.Stats, stallTimeout time.Duration, chaosOn bool) (uint64, uint64, uint64, uint64) {
	// The lock table is built through the registry's canonical
	// decorator pipeline: a chaos veto shim when fault injection is
	// armed (spurious TryLock/LockFor failures at the wrapper layer,
	// uniform across lock types), telemetry when -lockstat is on.
	var opts []registry.Option
	if chaosOn {
		opts = append(opts, registry.WithChaosVeto(""))
	}
	if st != nil {
		opts = append(opts, registry.WithStats(st))
	}
	locks := make([]*guarded, tableSize)
	for i := range locks {
		mu, err := lf.Build(opts...)
		if err != nil {
			violation("%s: build failed: %v", lf.Name, err)
		}
		g := &guarded{mu: mu}
		if w, ok := mu.(*lockstat.Instrumented); ok {
			if w.Boundable() {
				g.bnd = w
			}
		} else if b, ok := bounded.For(mu); ok {
			g.bnd = b
		}
		if r, ok := mu.(rwlock.RWLocker); ok && rwlock.IsReadShared(mu) {
			g.rw = r
		} else if o, ok := mu.(rwlock.OptimisticLocker); ok && rwlock.IsOptimistic(mu) {
			g.opt = o
		}
		locks[i] = g
	}
	var stop atomic.Bool
	var totalOps, totalAcq, totalAbandon, totalReads atomic.Uint64
	var expected atomic.Int64
	var heartbeat atomic.Uint64
	var wg sync.WaitGroup

	watchdogStop := make(chan struct{})
	if stallTimeout > 0 {
		go watchdog(lf.Name, &heartbeat, stallTimeout, st, watchdogStop)
	}
	defer close(watchdogStop)

	// worker performs random multi-lock episodes; maxOps == 0 means
	// "until stopped" (long-lived workers), otherwise the worker
	// retires after maxOps episodes (churn lane).
	worker := func(seed uint64, maxOps uint64) {
		defer wg.Done()
		rng := xrand.NewXorShift64(seed)
		var ops, acq uint64
		for !stop.Load() && (maxOps == 0 || ops < maxOps) {
			// Pick a random subset (1..4 locks), acquire in
			// canonical index order, release in a rotated order.
			n := 1 + rng.Intn(4)
			var idx [4]int
			last := -1
			k := 0
			for j := 0; j < n && last < tableSize-1; j++ {
				next := last + 1 + rng.Intn(tableSize-last-1)
				idx[k] = next
				k++
				last = next
			}
			held := idx[:k]
			for _, i := range held {
				locks[i].mu.Lock()
				if atomic.AddInt32(&locks[i].inside, 1) != 1 {
					violation("%s: mutual exclusion violated on lock %d", lf.Name, i)
				}
			}
			for _, i := range held {
				locks[i].count++
				expected.Add(1)
			}
			if ops%64 == 0 {
				runtime.Gosched() // force queueing on 1 CPU
			}
			rot := rng.Intn(k)
			for j := 0; j < k; j++ {
				i := held[(j+rot)%k]
				atomic.AddInt32(&locks[i].inside, -1)
				locks[i].mu.Unlock()
			}
			acq += uint64(k)
			ops++
			heartbeat.Add(1)
		}
		totalOps.Add(ops)
		totalAcq.Add(acq)
	}

	// canceller is the cancellation lane: bounded acquisitions with
	// short budgets against single random locks, so abandonment paths
	// run concurrently with the blocking workers. A failed bounded
	// acquire must leave the waiter lock-free; a successful one is a
	// normal episode and must uphold the same invariants.
	canceller := func(seed uint64) {
		defer wg.Done()
		rng := xrand.NewXorShift64(seed)
		var ops, acq, abandons uint64
		for !stop.Load() {
			g := locks[rng.Intn(tableSize)]
			if g.bnd == nil {
				return // unboundable lock type: no cancellation lane
			}
			acquired := false
			switch rng.Intn(3) {
			case 0:
				acquired = g.bnd.TryLock()
			case 1:
				acquired = g.bnd.LockFor(time.Duration(rng.Intn(100)) * time.Microsecond)
			default:
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+rng.Intn(100))*time.Microsecond)
				acquired = g.bnd.LockCtx(ctx) == nil
				cancel()
			}
			if acquired {
				if atomic.AddInt32(&g.inside, 1) != 1 {
					violation("%s: mutual exclusion violated after bounded acquire", lf.Name)
				}
				g.count++
				expected.Add(1)
				atomic.AddInt32(&g.inside, -1)
				g.bnd.Unlock()
				acq++
			} else {
				abandons++
			}
			ops++
			heartbeat.Add(1)
		}
		totalOps.Add(ops)
		totalAcq.Add(acq)
		totalAbandon.Add(abandons)
	}

	// reader is the read lane, spawned only for lock types claiming a
	// read capability: shared readers must never overlap a writer's
	// critical section (inside != 0), and the guarded counter must hold
	// still under a held read lock; for optimistic-only locks, a
	// validated optimistic section must not have overlapped a writer.
	reader := func(seed uint64) {
		defer wg.Done()
		rng := xrand.NewXorShift64(seed)
		var reads uint64
		for !stop.Load() {
			g := locks[rng.Intn(tableSize)]
			switch {
			case g.rw != nil:
				g.rw.RLock()
				if atomic.LoadInt32(&g.inside) != 0 {
					violation("%s: writer inside critical section while shared reader admitted", lf.Name)
				}
				c1 := g.count
				if reads%16 == 0 {
					runtime.Gosched()
				}
				if g.count != c1 {
					violation("%s: guarded counter moved under a held read lock", lf.Name)
				}
				g.rw.RUnlock()
			case g.opt != nil:
				var snap int32
				g.opt.OptimisticRead(func() { snap = atomic.LoadInt32(&g.inside) })
				if snap != 0 {
					violation("%s: validated optimistic section overlapped a writer", lf.Name)
				}
			default:
				// Capability claimed but no surface resolved on this
				// instance: the table is homogeneous, so nothing to do.
				totalReads.Add(reads)
				return
			}
			reads++
			heartbeat.Add(1)
		}
		totalReads.Add(reads)
	}

	// Fixed long-lived workers plus a churn lane: short-lived workers
	// are spawned back to back, exercising dynamic goroutine arrival
	// and departure (§5: threads created and destroyed dynamically).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker(runSeed+uint64(w)+1, 0)
	}
	wg.Add(2)
	go canceller(runSeed + 500)
	go canceller(runSeed + 501)
	if lf.Caps.Has(registry.CapReadShared) || lf.Caps.Has(registry.CapOptimisticRead) {
		wg.Add(2)
		go reader(runSeed + 700)
		go reader(runSeed + 701)
	}
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		seed := runSeed + 1000
		for !stop.Load() {
			var cwg sync.WaitGroup
			cwg.Add(1)
			wg.Add(1)
			go func(s uint64) {
				defer cwg.Done()
				worker(s, 200)
			}(seed)
			seed++
			cwg.Wait()
		}
	}()

	clock.Wall.Sleep(d)
	stop.Store(true)
	wg.Wait()
	<-churnDone

	// Verify lost-update freedom.
	var got int64
	for _, g := range locks {
		g.mu.Lock()
		got += g.count
		g.mu.Unlock()
	}
	if got != expected.Load() {
		violation("%s: lost updates: counted %d, expected %d", lf.Name, got, expected.Load())
	}
	return totalOps.Load(), totalAcq.Load(), totalAbandon.Load(), totalReads.Load()
}
