// Command torture runs a randomized multi-lock stress against every
// lock implementation in the repository: worker goroutines acquire
// random subsets of a lock table in canonical order (plural locking),
// mutate lock-protected counters, release in imbalanced order, and
// randomly churn (exit and get replaced). Invariant violations —
// mutual exclusion breaches or lost updates — abort with a report.
//
// Usage:
//
//	torture [-duration=10s] [-locks=all] [-workers=8] [-table=16]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lockstat"
	"repro/internal/mutexbench"
	"repro/internal/xrand"
)

type guarded struct {
	mu     sync.Locker
	inside int32
	count  int64
}

func main() {
	duration := flag.Duration("duration", 10*time.Second, "total stress time (split across lock types)")
	lockList := flag.String("locks", "all", "comma-separated lock names or 'all'")
	workers := flag.Int("workers", 8, "concurrent workers")
	tableSize := flag.Int("table", 16, "locks per table")
	lockstatOn := flag.Bool("lockstat", false, "run every lock through the telemetry wrapper and print per-type telemetry")
	flag.Parse()

	lfs := mutexbench.AllSet()
	if *lockList != "all" {
		lfs = nil
		for _, name := range strings.Split(*lockList, ",") {
			lf, ok := mutexbench.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown lock %q\n", name)
				os.Exit(2)
			}
			lfs = append(lfs, lf)
		}
	}

	per := *duration / time.Duration(len(lfs))
	telemetry := make(map[string]lockstat.Snapshot)
	var order []string
	for _, lf := range lfs {
		fmt.Printf("%-12s ", lf.Name)
		var st *lockstat.Stats
		if *lockstatOn {
			// One Stats per lock type across the whole table of
			// instances: torture is a multi-lock workload, so the
			// telemetry is per-algorithm, not per-instance.
			st = lockstat.New()
			lockstat.InstallWaiterSink(st)
		}
		ops, acquires := torture(lf, per, *workers, *tableSize, st)
		if st != nil {
			lockstat.InstallWaiterSink(nil)
			lockstat.Publish("lockstat.torture."+lf.Name, st)
			telemetry[lf.Name] = st.Snapshot()
			order = append(order, lf.Name)
		}
		fmt.Printf("ok: %d multi-lock ops, %d acquisitions\n", ops, acquires)
	}
	fmt.Println("all lock types survived")
	if *lockstatOn {
		fmt.Println()
		lockstat.FprintReport(os.Stdout, "Torture telemetry (per lock type, whole table pooled)", order, telemetry, false)
	}
}

func torture(lf mutexbench.LockFactory, d time.Duration, workers, tableSize int, st *lockstat.Stats) (uint64, uint64) {
	locks := make([]*guarded, tableSize)
	for i := range locks {
		mu := lf.New()
		if st != nil {
			mu = lockstat.Wrap(mu, st)
		}
		locks[i] = &guarded{mu: mu}
	}
	var stop atomic.Bool
	var totalOps, totalAcq atomic.Uint64
	var expected atomic.Int64
	var wg sync.WaitGroup

	// worker performs random multi-lock episodes; maxOps == 0 means
	// "until stopped" (long-lived workers), otherwise the worker
	// retires after maxOps episodes (churn lane).
	worker := func(seed uint64, maxOps uint64) {
		defer wg.Done()
		rng := xrand.NewXorShift64(seed)
		var ops, acq uint64
		for !stop.Load() && (maxOps == 0 || ops < maxOps) {
			// Pick a random subset (1..4 locks), acquire in
			// canonical index order, release in a rotated order.
			n := 1 + rng.Intn(4)
			var idx [4]int
			last := -1
			k := 0
			for j := 0; j < n && last < tableSize-1; j++ {
				next := last + 1 + rng.Intn(tableSize-last-1)
				idx[k] = next
				k++
				last = next
			}
			held := idx[:k]
			for _, i := range held {
				locks[i].mu.Lock()
				if atomic.AddInt32(&locks[i].inside, 1) != 1 {
					panic(fmt.Sprintf("%s: mutual exclusion violated on lock %d", lf.Name, i))
				}
			}
			for _, i := range held {
				locks[i].count++
				expected.Add(1)
			}
			if ops%64 == 0 {
				runtime.Gosched() // force queueing on 1 CPU
			}
			rot := rng.Intn(k)
			for j := 0; j < k; j++ {
				i := held[(j+rot)%k]
				atomic.AddInt32(&locks[i].inside, -1)
				locks[i].mu.Unlock()
			}
			acq += uint64(k)
			ops++
		}
		totalOps.Add(ops)
		totalAcq.Add(acq)
	}

	// Fixed long-lived workers plus a churn lane: short-lived workers
	// are spawned back to back, exercising dynamic goroutine arrival
	// and departure (§5: threads created and destroyed dynamically).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker(uint64(w)+1, 0)
	}
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		seed := uint64(1000)
		for !stop.Load() {
			var cwg sync.WaitGroup
			cwg.Add(1)
			wg.Add(1)
			go func(s uint64) {
				defer cwg.Done()
				worker(s, 200)
			}(seed)
			seed++
			cwg.Wait()
		}
	}()

	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	<-churnDone

	// Verify lost-update freedom.
	var got int64
	for _, g := range locks {
		g.mu.Lock()
		got += g.count
		g.mu.Unlock()
	}
	if got != expected.Load() {
		panic(fmt.Sprintf("%s: lost updates: counted %d, expected %d", lf.Name, got, expected.Load()))
	}
	return totalOps.Load(), totalAcq.Load()
}
