// Command mutexbench runs the §7.1 MutexBench microbenchmark on real
// goroutines (Track A): T workers loop acquire / critical section /
// release / non-critical section over a central lock, reporting
// aggregate throughput.
//
// Usage:
//
//	mutexbench -mode=max|moderate [-read-frac=0.9]
//	           [-locks=TKT,MCS,...|paper|all|list]
//	           [-threads=1,2,4] [-duration=300ms] [-runs=3] [-csv]
//	           [-json] [-out=file] [-chaos] [-seed=1] [-lockstat]
//
// With -read-frac > 0 the kernel is the read-mostly workload: that
// fraction of iterations are read sections dispatched through the
// lock's strongest read surface (RLock, OptimisticRead, or plain Lock
// as the baseline), the rest exclusive writes. Cells are then labeled
// readmostly/rNN instead of max/moderate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/lockstat"
	"repro/internal/mutexbench"
	"repro/internal/registry"
)

func main() {
	mode := flag.String("mode", "max", "contention mode: max or moderate")
	readFrac := flag.Float64("read-frac", 0, "fraction of iterations that are read sections (0 = classic exclusive kernel; 0.9 = read-mostly)")
	locksF := registry.NewLocksFlag("paper")
	flag.Var(locksF, "locks", registry.FlagUsage)
	bf := harness.Register(flag.CommandLine, harness.Spec{
		Duration: 300 * time.Millisecond,
		Runs:     3,
		Threads:  "1,2,4,8,16,32",
		Seed:     1,
	})
	lockstatOn := flag.Bool("lockstat", false, "collect per-lock telemetry (counters + latency histograms) and attach it to the report")
	chaosOn := flag.Bool("chaos", false, "arm deterministic fault injection (internal/chaos); results then measure robustness, not clean throughput")
	flag.Parse()

	lfs, listed, err := locksF.Resolve(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if listed {
		return
	}

	if *chaosOn {
		fmt.Fprintf(os.Stderr, "chaos fault injection armed (seed=%d) — throughput numbers are not comparable to clean runs\n", bf.Seed)
		chaos.Enable(chaos.DefaultConfig(bf.Seed))
		defer chaos.Disable()
	}

	ncs := 0
	if *mode == "moderate" {
		ncs = 250
	} else if *mode != "max" {
		fmt.Fprintln(os.Stderr, "unknown -mode; want max or moderate")
		os.Exit(2)
	}
	if *readFrac < 0 || *readFrac > 1 {
		fmt.Fprintln(os.Stderr, "-read-frac must be in [0,1]")
		os.Exit(2)
	}

	threads, err := bf.ThreadCounts()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := mutexbench.Config{
		Duration:    bf.Duration,
		Warmup:      bf.Warmup,
		CSSteps:     1,
		NCSMaxSteps: ncs,
		ReadFrac:    *readFrac,
		Runs:        bf.Runs,
		Seed:        uint32(bf.Seed),
	}
	workload := mutexbench.WorkloadName(cfg)

	// One Stats per lock algorithm, shared across every instance,
	// thread count and run; the waiter sink is installed only while
	// that lock is the one measured, so spin/yield/park attribution is
	// exact. That forces a per-lock sweep instead of one SweepResult
	// call, with the sub-results merged.
	res := mutexbench.SweepResult(nil, nil, cfg)
	res.Env = harness.CaptureEnv(bf.Seed)
	res.SetConfig("mode", *mode)
	var order []string
	for _, lf := range lfs {
		run := lf
		var st *lockstat.Stats
		if *lockstatOn {
			st = lockstat.New()
			fac, err := lf.Factory(registry.WithStats(st))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			run.New = fac
			lockstat.InstallWaiterSink(st)
		}
		sub := mutexbench.SweepResult([]registry.Entry{run}, threads, cfg)
		res.Cells = append(res.Cells, sub.Cells...)
		if st != nil {
			lockstat.InstallWaiterSink(nil)
			lockstat.Publish("lockstat."+lf.Name, st)
			if res.Lockstat == nil {
				res.Lockstat = map[string]lockstat.Snapshot{}
			}
			res.Lockstat[lf.Name] = st.Snapshot()
			order = append(order, lf.Name)
		}
	}

	out, closeOut, err := bf.OutputFile()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeOut()

	if bf.JSON {
		if err := res.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	fmt.Fprintln(out, experiments.TrackANote)
	t := harness.MatrixTable(res,
		fmt.Sprintf("MutexBench (%s) — aggregate Mops/s, median of %d", workload, bf.Runs))
	if bf.CSV {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}
	if *lockstatOn {
		fmt.Fprintln(out)
		lockstat.FprintReport(out,
			fmt.Sprintf("Lock telemetry (%s, all thread counts pooled)", workload),
			order, res.Lockstat, bf.CSV)
	}
}
