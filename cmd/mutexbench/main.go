// Command mutexbench runs the §7.1 MutexBench microbenchmark on real
// goroutines (Track A): T workers loop acquire / critical section /
// release / non-critical section over a central lock, reporting
// aggregate throughput.
//
// Usage:
//
//	mutexbench -mode=max|moderate [-locks=TKT,MCS,...|paper|all|list]
//	           [-threads=1,2,4] [-duration=300ms] [-runs=3] [-csv]
//	           [-chaos] [-seed=1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/lockstat"
	"repro/internal/mutexbench"
	"repro/internal/registry"
	"repro/internal/table"
)

func main() {
	mode := flag.String("mode", "max", "contention mode: max or moderate")
	locksF := registry.NewLocksFlag("paper")
	flag.Var(locksF, "locks", registry.FlagUsage)
	threadList := flag.String("threads", "1,2,4,8,16,32", "comma-separated goroutine counts")
	duration := flag.Duration("duration", 300*time.Millisecond, "measurement interval per configuration")
	runs := flag.Int("runs", 3, "independent runs per configuration (median reported)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	lockstatOn := flag.Bool("lockstat", false, "collect per-lock telemetry (counters + latency histograms) and print it after the throughput table")
	seed := flag.Uint64("seed", 1, "seed for chaos fault injection")
	chaosOn := flag.Bool("chaos", false, "arm deterministic fault injection (internal/chaos); results then measure robustness, not clean throughput")
	flag.Parse()

	lfs, listed, err := locksF.Resolve(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if listed {
		return
	}

	if *chaosOn {
		fmt.Printf("chaos fault injection armed (seed=%d) — throughput numbers are not comparable to clean runs\n", *seed)
		chaos.Enable(chaos.DefaultConfig(*seed))
		defer chaos.Disable()
	}

	ncs := 0
	if *mode == "moderate" {
		ncs = 250
	} else if *mode != "max" {
		fmt.Fprintln(os.Stderr, "unknown -mode; want max or moderate")
		os.Exit(2)
	}

	threads, err := parseInts(*threadList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Println(experiments.TrackANote)
	headers := []string{"Lock"}
	for _, tc := range threads {
		headers = append(headers, fmt.Sprintf("T=%d", tc))
	}
	t := table.New(fmt.Sprintf("MutexBench (%s contention) — aggregate Mops/s, median of %d", *mode, *runs), headers...)
	telemetry := make(map[string]lockstat.Snapshot)
	var order []string
	for _, lf := range lfs {
		run := lf
		var st *lockstat.Stats
		if *lockstatOn {
			// One Stats per lock algorithm, shared across every
			// instance, thread count and run. The waiter sink is
			// installed only while this lock is the one measured, so
			// spin/yield/park attribution is exact.
			st = lockstat.New()
			fac, err := lf.Factory(registry.WithStats(st))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			run.New = fac
			lockstat.InstallWaiterSink(st)
		}
		row := []string{lf.Name}
		for _, tc := range threads {
			res := mutexbench.Run(run, mutexbench.Config{
				Threads:     tc,
				Duration:    *duration,
				CSSteps:     1,
				NCSMaxSteps: ncs,
				Runs:        *runs,
			})
			row = append(row, table.F(res.Mops, 3))
		}
		t.Add(row...)
		if st != nil {
			lockstat.InstallWaiterSink(nil)
			lockstat.Publish("lockstat."+lf.Name, st)
			telemetry[lf.Name] = st.Snapshot()
			order = append(order, lf.Name)
		}
	}
	if *csv {
		t.RenderCSV(os.Stdout)
	} else {
		t.Render(os.Stdout)
	}
	if *lockstatOn {
		fmt.Println()
		lockstat.FprintReport(os.Stdout,
			fmt.Sprintf("Lock telemetry (%s contention, all thread counts pooled)", *mode),
			order, telemetry, *csv)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
