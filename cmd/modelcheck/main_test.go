package main

import (
	"strings"
	"testing"
)

// "Budget exhausted" and "all schedules verified" are different claims
// and must stay distinguishable in both the output and the exit code:
// a CI gate keying on exit 0 must never mistake a truncated search for
// a proof.
func TestRunDistinguishesVerifiedFromIncomplete(t *testing.T) {
	var out, errOut strings.Builder

	// TKT at 2×1 has a few hundred interleavings: comfortably within
	// the default budget, hopelessly beyond a budget of 10.
	if code := run([]string{"-lock=TKT", "-threads=2", "-episodes=1"}, &out, &errOut); code != 0 {
		t.Fatalf("full exploration: exit %d, want 0 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "VERIFIED") || strings.Contains(out.String(), "INCOMPLETE") {
		t.Fatalf("full exploration output %q must say VERIFIED", out.String())
	}

	out.Reset()
	if code := run([]string{"-lock=TKT", "-threads=2", "-episodes=1", "-budget=10"}, &out, &errOut); code != 3 {
		t.Fatalf("truncated exploration: exit %d, want 3", code)
	}
	if !strings.Contains(out.String(), "INCOMPLETE") || strings.Contains(out.String(), "VERIFIED") {
		t.Fatalf("truncated exploration output %q must say INCOMPLETE, not VERIFIED", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-lock=no-such-lock"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown lock: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown lock") {
		t.Fatalf("stderr %q must name the unknown lock", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

// Variant locks must be addressable by name now that ByName searches
// the whole simlocks catalog (base set, variants, fairness variants).
func TestRunResolvesVariantNames(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-lock=Recipro-L2", "-threads=2", "-episodes=1"}, &out, &errOut); code != 0 {
		t.Fatalf("Recipro-L2: exit %d, want 0 (stderr %q, out %q)", code, errOut.String(), out.String())
	}
}
