// Command modelcheck runs bounded exhaustive interleaving exploration
// (stateless model checking) over a simulated lock: every interleaving
// of the algorithm's memory operations for the given configuration is
// executed, checking mutual exclusion, deadlock freedom, and MESI
// invariants.
//
// Usage:
//
//	modelcheck -lock=Recipro -threads=2 -episodes=1 [-budget=500000]
//	modelcheck -lock=all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/coherence"
	"repro/internal/simlocks"
)

func main() {
	lockName := flag.String("lock", "Recipro", "simulated lock name, or 'all'")
	threads := flag.Int("threads", 2, "simulated threads")
	episodes := flag.Int("episodes", 1, "episodes per thread")
	budget := flag.Int("budget", 500_000, "maximum schedules to explore")
	flag.Parse()

	var targets []simlocks.Factory
	if *lockName == "all" {
		targets = append(simlocks.All(), simlocks.Variants()...)
		targets = append(targets, simlocks.FairnessVariants()...)
	} else {
		mk := simlocks.ByName(*lockName)
		if mk == nil {
			for _, f := range append(simlocks.Variants(), simlocks.FairnessVariants()...) {
				if f().Name() == *lockName {
					mk = f
				}
			}
		}
		if mk == nil {
			fmt.Fprintf(os.Stderr, "unknown lock %q; known: %v + variants\n", *lockName, simlocks.Names())
			os.Exit(2)
		}
		targets = []simlocks.Factory{mk}
	}

	fail := false
	for _, mk := range targets {
		name := mk().Name()
		var counterAddr coherence.Addr
		res := coherence.Explore(*threads, *budget, func() (*coherence.System, func(c *coherence.Ctx)) {
			sys := coherence.NewSystem(coherence.Config{CPUs: *threads})
			lock := mk()
			lock.Setup(sys, *threads)
			counterAddr = sys.Alloc("counter")
			return sys, func(c *coherence.Ctx) {
				for i := 0; i < *episodes; i++ {
					lock.Acquire(c, c.CPU)
					v := c.Load(counterAddr)
					c.Store(counterAddr, v+1)
					lock.Release(c, c.CPU)
				}
			}
		}, func(sys *coherence.System) error {
			want := uint64(*threads * *episodes)
			if got := sys.Peek(counterAddr); got != want {
				return fmt.Errorf("counter = %d, want %d (mutual exclusion violated)", got, want)
			}
			return sys.CheckInvariants()
		})
		switch {
		case res.Violation != nil:
			fail = true
			fmt.Printf("%-14s FAIL after %d schedules: %v\n    schedule: %v\n",
				name, res.Schedules, res.Violation, res.FailingSchedule)
		case res.Exhausted:
			fmt.Printf("%-14s VERIFIED: all %d interleavings pass (%d threads × %d episodes)\n",
				name, res.Schedules, *threads, *episodes)
		default:
			fmt.Printf("%-14s ok over %d-schedule prefix (tree not exhausted; raise -budget)\n",
				name, res.Schedules)
		}
	}
	if fail {
		os.Exit(1)
	}
}
