// Command modelcheck runs bounded exhaustive interleaving exploration
// (stateless model checking) over a simulated lock: every interleaving
// of the algorithm's memory operations for the given configuration is
// executed, checking mutual exclusion, deadlock freedom, and MESI
// invariants.
//
// Usage:
//
//	modelcheck -lock=Recipro -threads=2 -episodes=1 [-budget=500000]
//	modelcheck -lock=all
//
// The exit code distinguishes the three outcomes, so CI can tell a
// proof from a truncated search:
//
//	0 — every selected lock VERIFIED: the full interleaving tree was
//	    explored within budget and no invariant failed;
//	1 — a violation was found (the failing schedule is printed);
//	2 — usage error (unknown lock or flags);
//	3 — INCOMPLETE: no violation found, but at least one lock's tree
//	    was not exhausted within -budget. Not a verification result —
//	    raise -budget or shrink -threads/-episodes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/coherence"
	"repro/internal/simlocks"
	"repro/internal/verdict"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("modelcheck", flag.ContinueOnError)
	fs.SetOutput(errOut)
	lockName := fs.String("lock", "Recipro", "simulated lock name, or 'all'")
	threads := fs.Int("threads", 2, "simulated threads")
	episodes := fs.Int("episodes", 1, "episodes per thread")
	budget := fs.Int("budget", 500_000, "maximum schedules to explore")
	if err := fs.Parse(args); err != nil {
		return verdict.ExitUsage
	}

	var targets []simlocks.Factory
	if *lockName == "all" {
		targets = simlocks.Catalog()
	} else {
		mk := simlocks.ByName(*lockName)
		if mk == nil {
			fmt.Fprintf(errOut, "unknown lock %q; known: %v + variants\n", *lockName, simlocks.Names())
			return verdict.ExitUsage
		}
		targets = []simlocks.Factory{mk}
	}

	var statuses []verdict.Status
	for _, mk := range targets {
		name := mk().Name()
		var counterAddr coherence.Addr
		res := coherence.Explore(*threads, *budget, func() (*coherence.System, func(c *coherence.Ctx)) {
			sys := coherence.NewSystem(coherence.Config{CPUs: *threads})
			lock := mk()
			lock.Setup(sys, *threads)
			counterAddr = sys.Alloc("counter")
			return sys, func(c *coherence.Ctx) {
				for i := 0; i < *episodes; i++ {
					lock.Acquire(c, c.CPU)
					v := c.Load(counterAddr)
					c.Store(counterAddr, v+1)
					lock.Release(c, c.CPU)
				}
			}
		}, func(sys *coherence.System) error {
			want := uint64(*threads * *episodes)
			if got := sys.Peek(counterAddr); got != want {
				return fmt.Errorf("counter = %d, want %d (mutual exclusion violated)", got, want)
			}
			return sys.CheckInvariants()
		})
		switch {
		case res.Violation != nil:
			statuses = append(statuses, verdict.Violation)
			fmt.Fprintln(out, verdict.Line(name, verdict.Violation,
				fmt.Sprintf("after %d schedules: %v\nschedule: %v", res.Schedules, res.Violation, res.FailingSchedule)))
		case res.Exhausted:
			statuses = append(statuses, verdict.Verified)
			fmt.Fprintln(out, verdict.Line(name, verdict.Verified,
				fmt.Sprintf("all %d interleavings pass (%d threads × %d episodes)", res.Schedules, *threads, *episodes)))
		default:
			statuses = append(statuses, verdict.Incomplete)
			fmt.Fprintln(out, verdict.Line(name, verdict.Incomplete,
				fmt.Sprintf("%d-schedule budget exhausted before the tree was; no violation found, but this is not a verification — raise -budget", res.Schedules)))
		}
	}
	return verdict.Exit(statuses...)
}
