// Command conformance runs the cross-track conformance suite from
// internal/conformance against registry locks: the registry-wide
// property checks (mutual exclusion under randomized schedules, TryLock
// soundness, the bounded-acquisition contract with chaos stalls,
// abandonment safety, unlock-of-unlocked discipline) plus, for entries
// declaring a sim twin, the shard-aware store properties (per-shard
// mutual exclusion and untorn cross-shard batches in the sharded
// kvstore) and the differential checker that demands the real
// lock, its coherence-simulated twin, and the paper's abstract
// admission model agree on admission order, segment structure, and the
// bypass bound over seeded deterministic schedules.
//
// Usage:
//
//	conformance [-locks=all|paper|...|list] [-seed=1] [-schedules=100]
//	            [-duration=0] [-vtime] [-vtime-seeds=3]
//
// With -duration > 0 the suite soaks: it repeats with derived seeds
// until the budget elapses, reporting each pass. Exit status is 0 only
// if every check of every selected lock passes (skips are not
// failures).
//
// With -vtime the wall-clock suite is replaced by the deterministic
// virtual-time mode: real Reciprocating/MCS/CLH bounded-acquisition
// and backoff schedules run under clock.Virtual, each (lock, seed)
// executed twice and required to produce byte-identical traces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/clock"
	"repro/internal/conformance"
	"repro/internal/registry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("conformance", flag.ContinueOnError)
	locksF := registry.NewLocksFlag("all")
	fs.Var(locksF, "locks", registry.FlagUsage)
	seed := fs.Uint64("seed", 1, "base seed for all randomized schedules")
	schedules := fs.Int("schedules", 100, "differential schedules per twin-declaring lock")
	duration := fs.Duration("duration", 0, "soak budget: repeat the suite with derived seeds until elapsed (0 = one pass)")
	vtime := fs.Bool("vtime", false, "run the deterministic virtual-time schedules instead of the wall-clock suite")
	vtimeSeeds := fs.Int("vtime-seeds", 3, "with -vtime: number of consecutive seeds (starting at -seed) per lock")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *vtime {
		return runVTime(*seed, *vtimeSeeds, out)
	}
	entries, listed, err := locksF.Resolve(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if listed {
		return 0
	}

	deadline := time.Duration(0)
	if *duration > 0 {
		deadline = clock.Wall.Now() + *duration
	}

	fail := false
	for pass := 0; ; pass++ {
		o := conformance.Options{Seed: *seed + uint64(pass)*0x9e3779b97f4a7c15, Schedules: *schedules}
		if pass > 0 {
			fmt.Fprintf(out, "\nsoak pass %d (seed %#x)\n", pass, o.Seed)
		}
		if !runPass(entries, o, out) {
			fail = true
		}
		if deadline == 0 || clock.Wall.Now() >= deadline || fail {
			break
		}
	}
	if fail {
		return 1
	}
	return 0
}

// runVTime executes the deterministic virtual-time schedules: each
// (lock, seed) pair runs twice under clock.Virtual and the traces must
// match byte for byte.
func runVTime(seed uint64, nSeeds int, out *os.File) int {
	if nSeeds < 1 {
		nSeeds = 1
	}
	seeds := make([]uint64, nSeeds)
	for i := range seeds {
		seeds[i] = seed + uint64(i)
	}
	traces, err := conformance.CheckVTime(conformance.VTimeLocks, seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conformance -vtime: %v\n", err)
		return 1
	}
	w := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	fmt.Fprintf(w, "Lock\tseed\tevents\tbytes\tdeterministic\n")
	for _, name := range conformance.VTimeLocks {
		for _, s := range seeds {
			tr := traces[fmt.Sprintf("%s/%d", name, s)]
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\tyes\n", name, s, strings.Count(tr, "\n"), len(tr))
		}
	}
	w.Flush()
	fmt.Fprintf(out, "\nconformance -vtime: %d lock×seed schedules replayed byte-identically\n", len(traces))
	return 0
}

func runPass(entries []registry.Entry, o conformance.Options, out *os.File) bool {
	ok := true
	w := tabwriter.NewWriter(out, 2, 8, 2, ' ', 0)
	// The header is derived from the suite itself so the columns track
	// Run exactly (they had drifted apart once before).
	fmt.Fprintf(w, "Lock\t%s\tdetail\n", strings.Join(conformance.CheckNames(), "\t"))
	for _, e := range entries {
		r := conformance.Run(e, o)
		detail := ""
		fmt.Fprintf(w, "%s", e.Name)
		for _, c := range r.Results {
			switch {
			case c.Err == nil:
				fmt.Fprint(w, "\tpass")
			case conformance.Skipped(c.Err):
				fmt.Fprint(w, "\tskip")
			default:
				ok = false
				fmt.Fprint(w, "\tFAIL")
				if detail == "" {
					detail = fmt.Sprintf("%s: %v", c.Check, c.Err)
				}
			}
		}
		if detail == "" && r.Diff != nil {
			detail = fmt.Sprintf("%d schedules, %d events, bypass ≤ %d, %d detaches",
				r.Diff.Schedules, r.Diff.Events, r.Diff.MaxBypass, r.Diff.Detaches)
		}
		fmt.Fprintf(w, "\t%s\n", detail)
	}
	w.Flush()
	if !ok {
		fmt.Fprintln(out, "\nconformance: FAIL")
	} else {
		fmt.Fprintln(out, "\nconformance: all selected locks pass")
	}
	return ok
}
