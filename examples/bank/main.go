// Bank: plural locking under contention. Transfer operations lock two
// account locks at once and release them in non-LIFO order — the §5
// requirement profile (many locks held simultaneously, imbalanced
// release) — while auditors repeatedly sum all balances for a
// consistent snapshot by holding every lock.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/xrand"
)

const accounts = 64

type bank struct {
	locks    [accounts]repro.Lock
	balances [accounts]int64
}

// transfer moves amount between two accounts, locking in index order
// to avoid deadlock and releasing in acquisition (non-LIFO) order.
func (b *bank) transfer(from, to int, amount int64) {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	b.locks[lo].Lock()
	b.locks[hi].Lock()
	b.balances[from] -= amount
	b.balances[to] += amount
	b.locks[lo].Unlock() // imbalanced: first-acquired released first
	b.locks[hi].Unlock()
}

// audit sums every balance under all locks: the total must always be
// conserved.
func (b *bank) audit() int64 {
	for i := range b.locks {
		b.locks[i].Lock()
	}
	var total int64
	for i := range b.balances {
		total += b.balances[i]
	}
	for i := range b.locks {
		b.locks[i].Unlock()
	}
	return total
}

func main() {
	var b bank
	for i := range b.balances {
		b.balances[i] = 1000
	}
	const initial = accounts * 1000

	var transfers atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := xrand.NewXorShift64(uint64(w) + 1)
			for i := 0; i < 20_000; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				b.transfer(from, to, int64(rng.Intn(100)))
				transfers.Add(1)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			if got := b.audit(); got != initial {
				panic(fmt.Sprintf("audit mismatch: %d != %d", got, initial))
			}
		}
	}()
	wg.Wait()
	close(done)

	fmt.Printf("completed %d transfers across %d accounts\n", transfers.Load(), accounts)
	fmt.Printf("final audit: %d (expected %d)\n", b.audit(), initial)
}
