// Fairness: observing §9 live — the long-term admission disparity of
// the plain Reciprocating Lock under sustained contention, and how the
// §9.4 Bernoulli-deferral FairLock and the Appendix I TwoLaneLock
// restore statistical fairness.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/stats"
)

func measure(name string, l sync.Locker, workers int, d time.Duration) {
	counts := make([]atomic.Int64, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				l.Lock()
				counts[w].Add(1)
				l.Unlock()
			}
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	vals := make([]int64, workers)
	f := make([]float64, workers)
	var total int64
	for i := range counts {
		vals[i] = counts[i].Load()
		f[i] = float64(vals[i])
		total += vals[i]
	}
	fmt.Printf("%-12s total=%-9d jain=%.4f max/min=%.2f per-worker=%v\n",
		name, total, stats.JainIndex(f), stats.DisparityRatio(vals), vals)
}

func main() {
	const workers = 6
	const d = 300 * time.Millisecond
	fmt.Printf("%d workers hammering one lock for %v each:\n\n", workers, d)

	measure("Recipro", new(repro.Lock), workers, d)
	measure("Fair(1/16)", new(repro.FairLock), workers, d)
	measure("Fair(1/4)", &repro.FairLock{DeferProb: 64}, workers, d)
	measure("TwoLane", new(repro.TwoLaneLock), workers, d)

	fmt.Println("\nThe paper's §9.2 bound: lock-induced long-term disparity is at")
	fmt.Println("most 2x for the plain lock; the mitigations push Jain's index")
	fmt.Println("toward 1.0. (Under a 1-CPU Go scheduler, observed disparity also")
	fmt.Println("reflects scheduling; see EXPERIMENTS.md for the simulator view.)")
}
