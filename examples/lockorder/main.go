// LockOrder: the §5 "real-world environment" tooling around the lock —
// the REPRO_LOCK-selected interposition mutex (the paper's LD_PRELOAD
// methodology) wrapped in the lockdep-style ordering validator (the
// kernel facility the paper cites for its plural-locking requirement).
//
// Try: REPRO_LOCK=MCS go run ./examples/lockorder
package main

import (
	"fmt"

	"repro/internal/interpose"
	"repro/internal/lockdep"
)

func main() {
	impl, err := interpose.Implementation()
	if err != nil {
		panic(err)
	}
	fmt.Printf("lock implementation (set %s to change): %s\n\n", interpose.EnvVar, impl)

	dep := lockdep.New()
	dep.OnViolation = func(v *lockdep.Violation) {
		fmt.Println("  !! lockdep report:", v.Error())
	}

	accounts := dep.Wrap(new(interpose.Mutex), "accounts")
	journal := dep.Wrap(new(interpose.Mutex), "journal")
	cache := dep.Wrap(new(interpose.Mutex), "cache")

	w := dep.NewWorker()

	fmt.Println("consistent ordering (accounts → journal → cache): fine")
	for i := 0; i < 3; i++ {
		w.Lock(accounts)
		w.Lock(journal)
		w.Lock(cache)
		fmt.Println("  holding:", w.Held())
		// Imbalanced, non-LIFO release — legal and expected (§5).
		w.Unlock(accounts)
		w.Unlock(cache)
		w.Unlock(journal)
	}

	fmt.Println("\ninverted ordering (cache before accounts): flagged before it can deadlock")
	w.Lock(cache)
	w.Lock(accounts) // lockdep reports the cycle cache→accounts→...→cache
	w.Unlock(accounts)
	w.Unlock(cache)

	fmt.Println("\ndone — the inversion was detected without needing an actual deadlock")
}
