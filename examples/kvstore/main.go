// KVStore: the Figure 3 scenario as an application — an LSM-lite
// key-value store whose single coarse central mutex (the LevelDB
// DBImpl::Mutex analog) is a Reciprocating Lock, serving concurrent
// random readers while a writer churns.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
	"repro/internal/kvstore"
)

func main() {
	db := kvstore.Open(kvstore.Options{
		Lock:          new(repro.Lock),
		MemTableBytes: 64 << 10,
	})

	// Populate (db_bench fillseq analog).
	const keys = 20_000
	start := time.Now()
	kvstore.FillSeq(db, keys, 100)
	fmt.Printf("fillseq: %d keys in %v (%d runs frozen)\n",
		keys, time.Since(start).Round(time.Millisecond), db.Runs())

	// Concurrent readers + one writer.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := uint64(keys)
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.Put(kvstore.Key(i), []byte("fresh"))
			i++
		}
	}()

	res := kvstore.ReadRandom(db, kvstore.ReadRandomConfig{
		Threads:  8,
		Keyspace: keys,
		Duration: 300 * time.Millisecond,
	})
	close(stop)
	wg.Wait()

	fmt.Printf("readrandom: %d ops in %v — %.3f Mops/s, hit rate %.1f%%\n",
		res.Ops, res.Elapsed.Round(time.Millisecond), res.Mops,
		100*float64(res.Hits)/float64(res.Ops))
	s := db.Stats()
	fmt.Printf("db stats: gets=%d puts=%d freezes=%d compactions=%d\n",
		s.Gets, s.Puts, s.Freezes, s.Compactions)
}
