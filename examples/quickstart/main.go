// Quickstart: the Reciprocating Lock as a drop-in sync.Locker, plus
// the allocation-free explicit API.
package main

import (
	"fmt"
	"sync"

	"repro"
)

func main() {
	// 1. Drop-in replacement for sync.Mutex: zero value ready, no
	//    constructor, no destructor, one-word lock body.
	var mu repro.Lock
	counter := 0

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println("counter:", counter) // 80000

	// 2. Allocation-free episodes: one WaitElement per worker. A
	//    worker waits on at most one lock at a time, so a singleton
	//    element suffices no matter how many locks it uses (§2).
	var a, b repro.Lock
	e := new(repro.WaitElement)
	for i := 0; i < 3; i++ {
		tok := a.Acquire(e)
		fmt.Println("in critical section of a, iteration", i)
		a.Release(tok)

		tok = b.Acquire(e) // the same element serves another lock
		b.Release(tok)
	}

	// 3. TryLock for opportunistic acquisition.
	if mu.TryLock() {
		fmt.Println("TryLock succeeded on a free lock")
		mu.Unlock()
	}

	// 4. The critical-section-as-lambda interface from Listing 1
	//    (operator+ in the paper's C++).
	v := 5
	mu.Do(e, func() { v += 2 })
	fmt.Println("v:", v) // 7
}
