// AtomicStruct: the §7.2 scenario — a 20-byte struct made atomic via
// an address-hashed stripe of Reciprocating Locks (what libatomic does
// for std::atomic<S> when S exceeds hardware atomics), exercised with
// the Figure 2a exchange loop and Figure 2b CAS-retry loop.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro"
	"repro/internal/atomicstruct"
)

func main() {
	stripe := atomicstruct.NewStripe(64, func() sync.Locker { return new(repro.Lock) })
	shared := atomicstruct.New[atomicstruct.S](stripe)

	// Figure 2a: each thread repeatedly swaps its local copy with the
	// shared global.
	var wg sync.WaitGroup
	start := time.Now()
	const exchanges = 50_000
	for t := 0; t < 8; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := atomicstruct.S{A: int32(t)}
			for i := 0; i < exchanges; i++ {
				local = shared.Exchange(local)
			}
		}()
	}
	wg.Wait()
	fmt.Printf("exchange: %d ops in %v\n", 8*exchanges, time.Since(start).Round(time.Millisecond))

	// Figure 2b: load, increment the first field, CAS-retry.
	shared.Store(atomicstruct.S{})
	start = time.Now()
	const increments = 20_000
	for t := 0; t < 8; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := shared.Load()
			for i := 0; i < increments; i++ {
				for {
					next := cur
					next.A++
					wit, ok := shared.CompareExchange(cur, next)
					if ok {
						cur = next
						break
					}
					cur = wit
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("cas loop: A=%d (want %d) in %v\n",
		shared.Load().A, 8*increments, time.Since(start).Round(time.Millisecond))
}
