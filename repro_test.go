package repro_test

import (
	"sync"
	"testing"

	"repro"
)

// The facade types must be directly usable as sync.Locker with zero
// values.
func TestFacadeLockers(t *testing.T) {
	lockers := []sync.Locker{
		new(repro.Lock),
		new(repro.SimplifiedLock),
		new(repro.RelayLock),
		new(repro.FetchAddLock),
		new(repro.SimplifiedEOSLock),
		new(repro.CombinedLock),
		new(repro.GatedLock),
		new(repro.TwoLaneLock),
		new(repro.FairLock),
	}
	for i, l := range lockers {
		var wg sync.WaitGroup
		count := 0
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 500; j++ {
					l.Lock()
					count++
					l.Unlock()
				}
			}()
		}
		wg.Wait()
		if count != 2000 {
			t.Fatalf("locker %d lost updates: %d", i, count)
		}
	}
}

func TestFacadeExplicitAPI(t *testing.T) {
	var mu repro.Lock
	e := new(repro.WaitElement)
	tok := mu.Acquire(e)
	mu.Release(tok)
	if mu.Locked() {
		t.Fatal("lock left held")
	}
}
