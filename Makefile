# Test tiers for the Reciprocating Locks reproduction, cheapest first
# (TESTING.md describes when each tier gates a change):
#
#   make check       — the pre-push aggregate: gofmt gate (fails listing
#                      any unformatted file), go vet, the full
#                      build+test suite, the conformance tier, and the
#                      fuzz smoke.
#   make test        — tier 1: build + full test suite (the CI gate)
#   make race        — race tier: go vet + the full suite under -race
#                      (includes the registry capability-claims tests)
#   make bench       — the root benchmark suite (paper figures + ablations)
#   make bench-json  — regenerate results/bench_baseline.json: a short
#                      mutexbench sweep, a sharded kvbench sweep
#                      (shard count × lock matrix), and read-mostly
#                      sweeps (readmostly/r90 cells: the RW and seqlock
#                      combinators against their exclusive base, plus
#                      the kv store's mixed Get/Put loop), each emitted
#                      in the versioned harness JSON schema and merged
#                      with benchdiff -merge into the single anchor file
#                      cmd/benchdiff compares future runs against
#   make benchdiff-check — self-diff the committed baseline through
#                      cmd/benchdiff (schema + comparator smoke; part of
#                      make check)
#   make chaos       — robustness tier: cancellation/bounded-acquisition
#                      tests under -race, then a seeded fault-injected
#                      torture run over every lock variant with the stall
#                      watchdog armed
#   make conformance — cross-track tier: the full property suite and the
#                      100-schedule sim/real differential checker over
#                      every catalog lock (cmd/conformance)
#   make vtime       — deterministic-time tier: the clock package and
#                      virtual-time conformance tests under -race, then
#                      the real-lock bounded-acquisition + backoff
#                      schedules (Recipro/MCS/CLH) replayed under
#                      clock.Virtual for seeds 1–3, each required to be
#                      byte-identical across runs (cmd/conformance
#                      -vtime)
#   make cluster     — deterministic cluster-simulation tier: every
#                      canonical fault script × seeds {1,2,3} through
#                      cmd/clustersim (invariant violations exit
#                      non-zero with a one-command repro), plus the
#                      cluster package's test suite under -race
#   make explore     — cluster model-checking tier: the explore package
#                      and cmd/clusterexplore test suites, exhaustive
#                      schedule searches over the explore-small preset
#                      (must exit 0 VERIFIED), and the three mutation
#                      hunts (-no-fencing, -break-dedup,
#                      -skip-reconcile), each of which must exit 1 with
#                      a shrunk repro script that cmd/clustersim then
#                      replays to the same violation
#   make fuzz-smoke  — a short fuzz pass (FUZZTIME each) over every fuzz
#                      target: the registry -locks parser, the admission
#                      cycle detector, the kvstore differential,
#                      sharded-batch differential + skiplist targets,
#                      the seqlock optimistic-read differential, the
#                      cluster fault-script interpreter, and the
#                      schedule shrinker

GO ?= go
GOFMT ?= gofmt
CHAOS_SEED ?= 1
CONF_SEED ?= 1
FUZZTIME ?= 5s
BENCH_BASELINE ?= results/bench_baseline.json

.PHONY: all build check fmt-check test vet race bench bench-json benchdiff-check chaos conformance vtime cluster explore fuzz-smoke

all: test

build:
	$(GO) build ./...

check: fmt-check vet test conformance vtime cluster explore fuzz-smoke benchdiff-check

fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

bench-json: build
	@mkdir -p results
	$(GO) run ./cmd/mutexbench -locks=paper -threads=1,2,4,8 -duration=100ms -runs=3 -json -out=results/.mutexbench.part.json
	$(GO) run ./cmd/kvbench -mode=readrandom -locks=Recipro,MCS,GoMutex -shards=1,4 -threads=1,2,4 -keys=20000 -duration=80ms -runs=3 -json -out=results/.kvbench.part.json
	$(GO) run ./cmd/mutexbench -locks=Recipro,rw:Recipro,seq:Recipro,occ:Recipro,GoRWMutex -read-frac=0.9 -threads=1,2,4,8 -duration=100ms -runs=3 -json -out=results/.readmostly.part.json
	$(GO) run ./cmd/kvbench -mode=readrandom -read-frac=0.9 -locks=Recipro,rw:Recipro -shards=1 -threads=1,2,4 -keys=20000 -duration=80ms -runs=3 -json -out=results/.kvreadmostly.part.json
	$(GO) run ./cmd/benchdiff -merge -name=suite -out=$(BENCH_BASELINE) results/.mutexbench.part.json results/.kvbench.part.json results/.readmostly.part.json results/.kvreadmostly.part.json
	rm -f results/.mutexbench.part.json results/.kvbench.part.json results/.readmostly.part.json results/.kvreadmostly.part.json
	$(GO) run ./cmd/benchdiff -check $(BENCH_BASELINE)

benchdiff-check: build
	$(GO) run ./cmd/benchdiff -check $(BENCH_BASELINE)

chaos: build
	$(GO) test -race -run 'TryLock|Bounded|Cancel|Abandon|Chaos|PauseBounded' ./internal/chaos ./internal/bounded ./internal/core ./internal/locks ./internal/waiter
	$(GO) run -race ./cmd/torture -duration=30s -chaos -seed=$(CHAOS_SEED) -stall-timeout=10s -lockstat

conformance: build
	$(GO) run ./cmd/conformance -locks=all -seed=$(CONF_SEED) -schedules=100

vtime: build
	$(GO) test -race -count=1 -run 'Wall|Virtual|Deadline|NoDirectWallClock|VTime' ./internal/clock ./internal/conformance
	$(GO) run ./cmd/conformance -vtime -seed=1 -vtime-seeds=3

cluster: build
	$(GO) test -race ./internal/cluster ./cmd/clustersim
	@set -e; for script in lease-expiry-mid-cs thundering-herd asym-partition slow-node crash-during-handoff restart-storm expire-churn; do \
		for seed in 1 2 3; do \
			$(GO) run ./cmd/clustersim -quiet -script=$$script -seed=$$seed; \
		done; \
		echo "cluster: $$script OK (seeds 1 2 3)"; \
	done

explore: build
	$(GO) test ./internal/cluster/explore ./cmd/clusterexplore ./internal/verdict
	@set -e; for seed in 1 2 3; do \
		$(GO) run ./cmd/clusterexplore -seed=$$seed; \
		$(GO) run ./cmd/clusterexplore -seed=$$seed -script=expire-churn-tiny -window=1ms -delays=2; \
	done
	@set -e; mkdir -p results; for mut in no-fencing break-dedup skip-reconcile; do \
		repro=results/.repro-$$mut.script; code=0; \
		$(GO) run ./cmd/clusterexplore -seed=1 -script=expire-churn-tiny -window=1ms -delays=2 \
			-$$mut -repro-out=$$repro -quiet || code=$$?; \
		if [ $$code -ne 1 ]; then echo "explore: -$$mut exited $$code, want 1"; exit 1; fi; \
		sched="$$(sed -n 's/^# schedule: //p' $$repro)"; code=0; \
		$(GO) run ./cmd/clustersim -quiet -preset=explore-small -seed=1 -window=1ms -$$mut \
			-script=$$repro -schedule="$$sched" 2>/dev/null || code=$$?; \
		if [ $$code -ne 1 ]; then echo "explore: clustersim replay of $$repro exited $$code, want 1"; exit 1; fi; \
		rm -f $$repro; echo "explore: mutation -$$mut caught, shrunk, and replayed"; \
	done

fuzz-smoke: build
	$(GO) test -run '^$$' -fuzz='^FuzzParseLocks$$' -fuzztime=$(FUZZTIME) ./internal/registry
	$(GO) test -run '^$$' -fuzz='^FuzzFindCycle$$' -fuzztime=$(FUZZTIME) ./internal/admission
	$(GO) test -run '^$$' -fuzz='^FuzzDBAgainstMap$$' -fuzztime=$(FUZZTIME) ./internal/kvstore
	$(GO) test -run '^$$' -fuzz='^FuzzShardedBatch$$' -fuzztime=$(FUZZTIME) ./internal/kvstore
	$(GO) test -run '^$$' -fuzz='^FuzzSkipListOrdering$$' -fuzztime=$(FUZZTIME) ./internal/kvstore
	$(GO) test -run '^$$' -fuzz='^FuzzSeqlockRead$$' -fuzztime=$(FUZZTIME) ./internal/atomicstruct
	$(GO) test -run '^$$' -fuzz='^FuzzFaultScript$$' -fuzztime=$(FUZZTIME) ./internal/cluster
	$(GO) test -run '^$$' -fuzz='^FuzzShrink$$' -fuzztime=$(FUZZTIME) ./internal/cluster/explore
