# Test tiers for the Reciprocating Locks reproduction.
#
#   make test   — tier 1: build + full test suite (the CI gate)
#   make race   — race tier: go vet + the full suite under -race
#   make bench  — the root benchmark suite (paper figures + ablations)
#   make chaos  — robustness tier: cancellation/bounded-acquisition
#                 tests under -race, then a seeded fault-injected
#                 torture run over every lock variant with the stall
#                 watchdog armed

GO ?= go
CHAOS_SEED ?= 1

.PHONY: all build test vet race bench chaos

all: test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

chaos: build
	$(GO) test -race -run 'TryLock|Bounded|Cancel|Abandon|Chaos|PauseBounded' ./internal/chaos ./internal/bounded ./internal/core ./internal/locks ./internal/waiter
	$(GO) run -race ./cmd/torture -duration=30s -chaos -seed=$(CHAOS_SEED) -stall-timeout=10s -lockstat
