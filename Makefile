# Test tiers for the Reciprocating Locks reproduction, cheapest first:
#
#   make check  — tier 0+1 aggregate: gofmt gate (fails listing any
#                 unformatted file), go vet, then the full build+test
#                 suite. The one command to run before pushing.
#   make test   — tier 1: build + full test suite (the CI gate)
#   make race   — race tier: go vet + the full suite under -race
#                 (includes the registry capability-claims tests)
#   make bench  — the root benchmark suite (paper figures + ablations)
#   make chaos  — robustness tier: cancellation/bounded-acquisition
#                 tests under -race, then a seeded fault-injected
#                 torture run over every lock variant with the stall
#                 watchdog armed

GO ?= go
GOFMT ?= gofmt
CHAOS_SEED ?= 1

.PHONY: all build check fmt-check test vet race bench chaos

all: test

build:
	$(GO) build ./...

check: fmt-check vet test

fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

chaos: build
	$(GO) test -race -run 'TryLock|Bounded|Cancel|Abandon|Chaos|PauseBounded' ./internal/chaos ./internal/bounded ./internal/core ./internal/locks ./internal/waiter
	$(GO) run -race ./cmd/torture -duration=30s -chaos -seed=$(CHAOS_SEED) -stall-timeout=10s -lockstat
