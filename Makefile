# Test tiers for the Reciprocating Locks reproduction.
#
#   make test   — tier 1: build + full test suite (the CI gate)
#   make race   — race tier: go vet + the full suite under -race
#   make bench  — the root benchmark suite (paper figures + ablations)

GO ?= go

.PHONY: all build test vet race bench

all: test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .
