// Package repro is a from-scratch Go implementation of Reciprocating
// Locks (Dice & Kogan, PPoPP 2025): a compact, constant-time,
// locally-spinning mutual exclusion algorithm with population-bounded
// bypass, together with every variant published in the paper and the
// complete evaluation apparatus needed to reproduce its results.
//
// The primary type is Lock — the canonical Listing 1 algorithm:
//
//	var mu repro.Lock        // zero value ready; one word + context
//	mu.Lock()
//	defer mu.Unlock()
//
// All lock types implement sync.Locker with usable zero values and
// require no constructors or destructors. For allocation-free hot
// paths, use the explicit wait-element API:
//
//	e := new(repro.WaitElement)   // one per worker goroutine
//	tok := mu.Acquire(e)
//	... critical section ...
//	mu.Release(tok)
//
// Variants (see the package documentation of repro/internal/core for
// the algorithm-by-algorithm discussion):
//
//	SimplifiedLock    Listing 2 — eos word in the lock body
//	RelayLock         Listing 3 — double-swap arrival, relay on race
//	FetchAddLock      Listing 4 — tagged word, one atomic in Release
//	SimplifiedEOSLock Listing 5 — tagged word, per-element eos
//	CombinedLock      Listing 6 — Listings 3+5 without fetch-add
//	GatedLock         Appendix H — pop-stack + leader gate
//	TwoLaneLock       Appendix I — randomized two-lane, long-term fair
//	FairLock          §9.4 — Bernoulli deferral mitigation
//
// The companion packages under internal/ provide the baseline locks
// the paper compares against (MCS, CLH, HemLock, TWA, tickets, and
// more), a deterministic MESI coherence simulator that reproduces the
// paper's Table 1 and Figure 1 results, and benchmark harnesses for
// every table and figure (see DESIGN.md and EXPERIMENTS.md).
package repro

import (
	"sync"

	"repro/internal/core"
	"repro/internal/registry"
)

// Lock is the canonical Reciprocating Lock (Listing 1).
type Lock = core.Lock

// WaitElement is the per-worker waiting element used by the
// allocation-free Acquire/Release API of Lock and FairLock.
type WaitElement = core.WaitElement

// Token carries acquire-to-release context for Lock's explicit API.
type Token = core.Token

// SimplifiedLock is the Listing 2 variant (recommended starting
// point).
type SimplifiedLock = core.SimplifiedLock

// RelayLock is the Listing 3 double-swap/relay variant.
type RelayLock = core.RelayLock

// FetchAddLock is the Listing 4 tagged-word fetch-add variant.
type FetchAddLock = core.FetchAddLock

// SimplifiedEOSLock is the Listing 5 variant.
type SimplifiedEOSLock = core.SimplifiedEOSLock

// CombinedLock is the Listing 6 variant.
type CombinedLock = core.CombinedLock

// GatedLock is the Appendix H "Gated" formulation.
type GatedLock = core.GatedLock

// TwoLaneLock is the Appendix I "2 Lanes" formulation with long-term
// statistical fairness.
type TwoLaneLock = core.TwoLaneLock

// FairLock is the §9.4 Bernoulli-deferral fairness mitigation.
type FairLock = core.FairLock

// LockInfo describes one entry of the repository-wide lock catalog:
// its canonical name and aliases, algorithm family, paper-set
// membership, declared capabilities, and constructor.
type LockInfo = registry.Entry

// Locks returns the full lock catalog in canonical order — every lock
// implementation in the repository with its declared capabilities.
func Locks() []LockInfo { return registry.All() }

// PaperLocks returns the catalog entries for the six algorithms of the
// paper's Figure 1 comparison set.
func PaperLocks() []LockInfo { return registry.Paper() }

// NewLock constructs a lock from the catalog by name or alias
// (case-insensitive, e.g. "Recipro", "MCS", "sync.Mutex"). It reports
// false when no catalog entry matches.
func NewLock(name string) (sync.Locker, bool) {
	lf, ok := registry.Lookup(name)
	if !ok {
		return nil, false
	}
	return lf.New(), true
}
